(* Constant folding of individual instructions, shared by SCCP, GVN and
   instcombine. Folding never changes observable behaviour: operations
   that could trap at runtime (div/rem by zero) are left alone. *)

open Llva

let scalar_of_const (c : Ir.const) : Eval.scalar option =
  match c.Ir.ckind with
  | Ir.Cbool b -> Some (Eval.B b)
  | Ir.Cint v -> Some (Eval.I (c.Ir.cty, v))
  | Ir.Cfloat v -> Some (Eval.F (c.Ir.cty, Eval.round_float c.Ir.cty v))
  | Ir.Cnull -> Some (Eval.P 0L)
  | Ir.Czero -> (
      match c.Ir.cty with
      | Types.Bool -> Some (Eval.B false)
      | t when Types.is_integer t -> Some (Eval.I (t, 0L))
      | t when Types.is_fp t -> Some (Eval.F (t, 0.0))
      | Types.Pointer _ -> Some (Eval.P 0L)
      | _ -> None)
  | _ -> None

let const_of_scalar ty (s : Eval.scalar) : Ir.value option =
  match s with
  | Eval.B b -> Some (Ir.const_bool b)
  | Eval.I (_, v) -> Some (Ir.const_int ty v)
  | Eval.F (_, v) -> Some (Ir.const_float ty v)
  | Eval.P 0L -> Some (Ir.const_null ty)
  | Eval.P _ -> None (* cannot name an arbitrary address statically *)
  | Eval.Undef _ -> Some (Ir.undef ty)

let operand_scalar (v : Ir.value) : Eval.scalar option =
  match v with
  | Ir.Const c -> scalar_of_const c
  | Ir.Vundef ty -> Some (Eval.Undef ty)
  | _ -> None

(* Try to fold [i] to a constant value. *)
let fold_instr (i : Ir.instr) : Ir.value option =
  let all_const =
    Array.for_all
      (fun v -> match operand_scalar v with Some _ -> true | None -> false)
      i.Ir.operands
  in
  if not all_const then None
  else
    let s k = Option.get (operand_scalar i.Ir.operands.(k)) in
    match i.Ir.op with
    | Ir.Binop op -> (
        match Eval.binop op (s 0) (s 1) with
        | result -> const_of_scalar i.Ir.ity result
        | exception Eval.Division_by_zero -> None (* preserve the trap *)
        | exception Eval.Overflow -> None (* preserve the trap *)
        | exception Invalid_argument _ -> None)
    | Ir.Setcc c -> (
        match
          Eval.compare_scalars (Ir.type_of_value i.Ir.operands.(0)) c (s 0) (s 1)
        with
        | result -> const_of_scalar i.Ir.ity result
        | exception Invalid_argument _ -> None)
    | Ir.Cast -> (
        let src_ty = Ir.type_of_value i.Ir.operands.(0) in
        match Eval.cast ~src_ty ~dst_ty:i.Ir.ity (s 0) with
        | result -> const_of_scalar i.Ir.ity result
        | exception Invalid_argument _ -> None)
    | _ -> None

(* The branch target a constant-condition terminator will take, if
   statically known. *)
let fold_terminator (i : Ir.instr) : Ir.block option =
  match i.Ir.op with
  | Ir.Br when Array.length i.Ir.operands = 3 -> (
      match operand_scalar i.Ir.operands.(0) with
      | Some (Eval.B true) -> Some (Ir.block_of_value i.Ir.operands.(1))
      | Some (Eval.B false) -> Some (Ir.block_of_value i.Ir.operands.(2))
      | _ -> None)
  | Ir.Mbr -> (
      match operand_scalar i.Ir.operands.(0) with
      | Some (Eval.I (_, sel)) ->
          let rec find k =
            if k + 1 >= Array.length i.Ir.operands then
              Some (Ir.block_of_value i.Ir.operands.(1))
            else
              match i.Ir.operands.(k) with
              | Ir.Const { ckind = Ir.Cint c; _ } when Int64.equal c sel ->
                  Some (Ir.block_of_value i.Ir.operands.(k + 1))
              | _ -> find (k + 2)
          in
          find 2
      | _ -> None)
  | _ -> None
