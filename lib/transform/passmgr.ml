(* Pass manager: a registry of named module passes and standard pipelines
   mirroring the paper's compile/link-time optimization levels (§4.2).
   Each pass returns the number of changes it made; pipelines can re-run
   to a fixpoint and optionally verify the module between passes. *)

open Llva

type pass = { name : string; description : string; run : Ir.modl -> int }

let all_passes : pass list =
  [
    {
      name = "mem2reg";
      description = "promote scalar allocas to SSA registers";
      run = Mem2reg.run_module;
    };
    {
      name = "instcombine";
      description = "constant folding and algebraic simplification";
      run = Instcombine.run_module;
    };
    {
      name = "sccp";
      description = "sparse conditional constant propagation";
      run = Sccp.run_module;
    };
    {
      name = "gvn";
      description = "value numbering + redundant load elimination";
      run = Gvn.run_module;
    };
    {
      name = "licm";
      description = "loop-invariant code motion";
      run = Licm.run_module;
    };
    {
      name = "dce";
      description = "trivially dead instruction elimination";
      run = Dce.run_module;
    };
    {
      name = "adce";
      description = "aggressive dead code elimination";
      run = Adce.run_module;
    };
    {
      name = "simplifycfg";
      description = "CFG cleanup: fold branches, merge blocks";
      run = Simplifycfg.run_module;
    };
    {
      name = "deadargelim";
      description = "remove unused function arguments at link time";
      run = Deadargelim.run_module;
    };
    {
      name = "inline";
      description = "inline small non-recursive functions";
      run = (fun m -> Inline.run_module m);
    };
    {
      name = "globaldce";
      description = "remove unreachable functions and globals";
      run = (fun m -> Globaldce.run_module m);
    };
  ]

let find name = List.find_opt (fun p -> p.name = name) all_passes

exception Unknown_pass of string

(* Raised when a pass leaves the module failing [Verify.verify_module]:
   the offending pass name plus the verifier's messages, so drivers can
   report them and exit non-zero instead of dying on a bare [Failure]. *)
exception Pass_broke_module of string * string list

let () =
  Printexc.register_printer (function
    | Pass_broke_module (name, errs) ->
        Some
          (Printf.sprintf "pass %s broke the module: %s" name
             (String.concat "; " errs))
    | _ -> None)

let run_pass ?(verify = false) (m : Ir.modl) name : int =
  match find name with
  | None -> raise (Unknown_pass name)
  | Some p ->
      let n = p.run m in
      if verify then begin
        match Verify.verify_module m with
        | [] -> ()
        | errs -> raise (Pass_broke_module (name, errs))
      end;
      n

let run_pipeline ?(verify = false) (m : Ir.modl) names : int =
  List.fold_left (fun acc name -> acc + run_pass ~verify m name) 0 names

(* The standard optimization levels. O1 is the per-module "compile-time"
   pipeline; O2 adds the link-time interprocedural passes and iterates. *)
let o1_pipeline =
  [ "simplifycfg"; "mem2reg"; "instcombine"; "sccp"; "simplifycfg"; "gvn";
    "adce"; "simplifycfg" ]

let o2_pipeline =
  o1_pipeline
  @ [ "inline"; "deadargelim"; "simplifycfg"; "mem2reg"; "instcombine";
      "sccp"; "simplifycfg"; "gvn"; "licm"; "adce"; "simplifycfg";
      "globaldce" ]

let optimize ?(level = 2) ?(verify = false) (m : Ir.modl) : int =
  match level with
  | 0 -> 0
  | 1 -> run_pipeline ~verify m o1_pipeline
  | _ ->
      let n1 = run_pipeline ~verify m o2_pipeline in
      (* a second iteration catches opportunities exposed by inlining *)
      let n2 = run_pipeline ~verify m o1_pipeline in
      n1 + n2
