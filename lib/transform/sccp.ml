(* Sparse conditional constant propagation (Wegman–Zadeck) over the SSA
   graph: simultaneously propagates constants and dead control-flow edges,
   so constants that only hold on feasible paths are still found. *)

open Llva

type lattice = Top | Known of Eval.scalar | Bottom

let meet a b =
  match (a, b) with
  | Top, x | x, Top -> x
  | Bottom, _ | _, Bottom -> Bottom
  | Known x, Known y -> if Eval.equal x y then Known x else Bottom

let run_function (f : Ir.func) : int =
  if Ir.is_declaration f then 0
  else begin
    let values : (int, lattice) Hashtbl.t = Hashtbl.create 64 in
    let lat_of_instr (i : Ir.instr) =
      match Hashtbl.find_opt values i.Ir.iid with Some l -> l | None -> Top
    in
    let lat_of_value (v : Ir.value) =
      match v with
      | Ir.Const c -> (
          match Constfold.scalar_of_const c with
          | Some s -> Known s
          | None -> Bottom)
      | Ir.Vundef _ -> Top
      | Ir.Vreg i -> lat_of_instr i
      | Ir.Varg _ | Ir.Vglobal _ | Ir.Vfunc _ -> Bottom
      | Ir.Vblock _ -> Bottom
    in
    let block_executable : (int, unit) Hashtbl.t = Hashtbl.create 16 in
    let edge_executable : (int * int, unit) Hashtbl.t = Hashtbl.create 32 in
    let cfg_work = Queue.create () in
    let ssa_work = Queue.create () in
    let mark_edge (src : Ir.block) (dst : Ir.block) =
      if not (Hashtbl.mem edge_executable (src.Ir.blid, dst.Ir.blid)) then begin
        Hashtbl.replace edge_executable (src.Ir.blid, dst.Ir.blid) ();
        if not (Hashtbl.mem block_executable dst.Ir.blid) then begin
          Hashtbl.replace block_executable dst.Ir.blid ();
          Queue.add dst cfg_work
        end
        else
          (* new edge into an already-live block: phis must re-meet *)
          List.iter (fun phi -> Queue.add phi ssa_work) (Ir.block_phis dst)
      end
    in
    let set_lattice (i : Ir.instr) l =
      let old = lat_of_instr i in
      let merged =
        (* lattice only descends *)
        match (old, l) with
        | Top, x -> x
        | x, Top -> x
        | _ -> meet old l
      in
      if merged <> old then begin
        Hashtbl.replace values i.Ir.iid merged;
        List.iter (fun (u : Ir.use) -> Queue.add u.Ir.user ssa_work) i.Ir.iuses
      end
    in
    let visit_instr (i : Ir.instr) =
      match i.Ir.op with
      | Ir.Phi ->
          let contributions =
            List.filter_map
              (fun (v, pred) ->
                match i.Ir.iparent with
                | Some b
                  when Hashtbl.mem edge_executable (pred.Ir.blid, b.Ir.blid) ->
                    Some (lat_of_value v)
                | _ -> None)
              (Ir.phi_incoming i)
          in
          let l = List.fold_left meet Top contributions in
          set_lattice i l
      | Ir.Binop op -> (
          match (lat_of_value i.Ir.operands.(0), lat_of_value i.Ir.operands.(1)) with
          | Bottom, _ | _, Bottom -> set_lattice i Bottom
          | Top, _ | _, Top -> ()
          | Known a, Known b -> (
              match Eval.binop op a b with
              | r -> set_lattice i (Known r)
              | exception Eval.Division_by_zero -> set_lattice i Bottom
              | exception Eval.Overflow -> set_lattice i Bottom
              | exception Invalid_argument _ -> set_lattice i Bottom))
      | Ir.Setcc c -> (
          match (lat_of_value i.Ir.operands.(0), lat_of_value i.Ir.operands.(1)) with
          | Bottom, _ | _, Bottom -> set_lattice i Bottom
          | Top, _ | _, Top -> ()
          | Known a, Known b -> (
              match
                Eval.compare_scalars (Ir.type_of_value i.Ir.operands.(0)) c a b
              with
              | r -> set_lattice i (Known r)
              | exception Invalid_argument _ -> set_lattice i Bottom))
      | Ir.Cast -> (
          match lat_of_value i.Ir.operands.(0) with
          | Bottom -> set_lattice i Bottom
          | Top -> ()
          | Known a -> (
              match
                Eval.cast
                  ~src_ty:(Ir.type_of_value i.Ir.operands.(0))
                  ~dst_ty:i.Ir.ity a
              with
              | r -> set_lattice i (Known r)
              | exception Invalid_argument _ -> set_lattice i Bottom))
      | Ir.Br when Array.length i.Ir.operands = 3 -> (
          let b = Option.get i.Ir.iparent in
          match lat_of_value i.Ir.operands.(0) with
          | Known (Eval.B true) ->
              mark_edge b (Ir.block_of_value i.Ir.operands.(1))
          | Known (Eval.B false) ->
              mark_edge b (Ir.block_of_value i.Ir.operands.(2))
          | Bottom | Known _ ->
              mark_edge b (Ir.block_of_value i.Ir.operands.(1));
              mark_edge b (Ir.block_of_value i.Ir.operands.(2))
          | Top -> ())
      | Ir.Br ->
          mark_edge (Option.get i.Ir.iparent) (Ir.block_of_value i.Ir.operands.(0))
      | Ir.Mbr -> (
          let b = Option.get i.Ir.iparent in
          match lat_of_value i.Ir.operands.(0) with
          | Known (Eval.I (_, sel)) ->
              let rec find k =
                if k + 1 >= Array.length i.Ir.operands then
                  Ir.block_of_value i.Ir.operands.(1)
                else
                  match i.Ir.operands.(k) with
                  | Ir.Const { ckind = Ir.Cint c; _ } when Int64.equal c sel ->
                      Ir.block_of_value i.Ir.operands.(k + 1)
                  | _ -> find (k + 2)
              in
              mark_edge b (find 2)
          | Top -> ()
          | _ -> List.iter (mark_edge b) (Ir.successors b))
      | Ir.Invoke ->
          let b = Option.get i.Ir.iparent in
          set_lattice i Bottom;
          mark_edge b (Ir.block_of_value i.Ir.operands.(1));
          mark_edge b (Ir.block_of_value i.Ir.operands.(2))
      | Ir.Ret | Ir.Unwind | Ir.Store -> ()
      | Ir.Load | Ir.Call | Ir.Getelementptr | Ir.Alloca ->
          set_lattice i Bottom
    in
    (* seed: entry block *)
    let entry = Ir.entry_block f in
    Hashtbl.replace block_executable entry.Ir.blid ();
    Queue.add entry cfg_work;
    while not (Queue.is_empty cfg_work && Queue.is_empty ssa_work) do
      while not (Queue.is_empty cfg_work) do
        let b = Queue.pop cfg_work in
        List.iter visit_instr b.Ir.instrs
      done;
      while not (Queue.is_empty ssa_work) do
        let i = Queue.pop ssa_work in
        match i.Ir.iparent with
        | Some b when Hashtbl.mem block_executable b.Ir.blid -> visit_instr i
        | _ -> ()
      done
    done;
    (* rewrite: constants replace instructions; constant conditions become
       literal so SimplifyCFG can fold the branches *)
    let replaced = ref 0 in
    List.iter
      (fun (b : Ir.block) ->
        List.iter
          (fun (i : Ir.instr) ->
            if (not (Types.equal i.Ir.ity Types.Void)) && i.Ir.op <> Ir.Alloca
            then
              match lat_of_instr i with
              | Known s -> (
                  match Constfold.const_of_scalar i.Ir.ity s with
                  | Some c when i.Ir.iuses <> [] ->
                      Ir.replace_all_uses_with (Ir.Vreg i) c;
                      incr replaced
                  | _ -> ())
              | _ -> ())
          b.Ir.instrs)
      f.Ir.fblocks;
    !replaced
  end

let run_module (m : Ir.modl) : int =
  List.fold_left (fun n f -> n + run_function f) 0 m.Ir.funcs
