(* Paged, byte-addressable virtual memory for the LLVA interpreter and the
   hardware simulators. Accesses to unmapped addresses (including the null
   page) raise [Fault], which the execution engines turn into the precise
   memory exceptions of paper §3.3. *)

open Llva

exception Fault of int64 (* faulting address *)

let page_bits = 12
let page_size = 1 lsl page_bits

type t = {
  pages : (int, Bytes.t) Hashtbl.t;
  target : Target.config;
  mutable brk : int64; (* first unused heap address *)
  mutable free_lists : (int * int64 list) list; (* size-class allocator *)
  mutable allocated : (int64, int) Hashtbl.t; (* live malloc blocks: addr -> size *)
}

(* Address-space map (identical on every target; the 32-bit configurations
   simply never grow past 4 GiB in practice):
   0x0000_0000 .. 0x0000_0FFF  null page, always faults
   0x0000_1000 .. globals/code
   heap: grows upward from [heap_base]
   stack: grows downward from [stack_top] *)
let globals_base = 0x1000L
let heap_base = 0x0100_0000L
let stack_top = 0x0F00_0000L

let create target =
  {
    pages = Hashtbl.create 256;
    target;
    brk = heap_base;
    free_lists = [];
    allocated = Hashtbl.create 64;
  }

let page_of mem addr =
  let a = Int64.to_int addr in
  if Int64.compare addr 0x1000L < 0 || Int64.compare addr 0L < 0 then
    raise (Fault addr);
  let idx = a lsr page_bits in
  match Hashtbl.find_opt mem.pages idx with
  | Some p -> p
  | None ->
      let p = Bytes.make page_size '\000' in
      Hashtbl.replace mem.pages idx p;
      p

let read_u8 mem addr =
  let p = page_of mem addr in
  Char.code (Bytes.get p (Int64.to_int addr land (page_size - 1)))

let write_u8 mem addr v =
  let p = page_of mem addr in
  Bytes.set p (Int64.to_int addr land (page_size - 1)) (Char.chr (v land 0xFF))

(* ---------- word-granularity fast paths ----------

   An access that lies entirely inside one page is served with a single
   [Bytes] primitive on the backing page; only accesses that straddle a
   page boundary take the byte-at-a-time loop below. The byte loops stay
   the semantic reference: every fast path must agree with them. *)

(* Bulk copies go page-by-page with [Bytes.blit] rather than byte-by-byte;
   a straddling copy is just several in-page blits. *)
let read_bytes mem addr n =
  let b = Bytes.create n in
  let rec go addr k =
    if k < n then begin
      let p = page_of mem addr in
      let off = Int64.to_int addr land (page_size - 1) in
      let chunk = min (n - k) (page_size - off) in
      Bytes.blit p off b k chunk;
      go (Int64.add addr (Int64.of_int chunk)) (k + chunk)
    end
  in
  go addr 0;
  b

let write_bytes mem addr b =
  let n = Bytes.length b in
  let rec go addr k =
    if k < n then begin
      let p = page_of mem addr in
      let off = Int64.to_int addr land (page_size - 1) in
      let chunk = min (n - k) (page_size - off) in
      Bytes.blit b k p off chunk;
      go (Int64.add addr (Int64.of_int chunk)) (k + chunk)
    end
  in
  go addr 0

(* Fill [n] bytes starting at [addr] with byte value [c]. *)
let fill mem addr n c =
  let ch = Char.chr (c land 0xFF) in
  let rec go addr k =
    if k < n then begin
      let p = page_of mem addr in
      let off = Int64.to_int addr land (page_size - 1) in
      let chunk = min (n - k) (page_size - off) in
      Bytes.fill p off chunk ch;
      go (Int64.add addr (Int64.of_int chunk)) (k + chunk)
    end
  in
  go addr 0

(* Multi-byte accesses honour the target's endianness. *)
let read_uint_slow mem addr n =
  let v = ref 0L in
  (match mem.target.Target.endian with
  | Target.Little ->
      for k = n - 1 downto 0 do
        v :=
          Int64.logor
            (Int64.shift_left !v 8)
            (Int64.of_int (read_u8 mem (Int64.add addr (Int64.of_int k))))
      done
  | Target.Big ->
      for k = 0 to n - 1 do
        v :=
          Int64.logor
            (Int64.shift_left !v 8)
            (Int64.of_int (read_u8 mem (Int64.add addr (Int64.of_int k))))
      done);
  !v

let write_uint_slow mem addr n value =
  match mem.target.Target.endian with
  | Target.Little ->
      for k = 0 to n - 1 do
        write_u8 mem
          (Int64.add addr (Int64.of_int k))
          (Int64.to_int (Int64.logand (Int64.shift_right_logical value (8 * k)) 0xFFL))
      done
  | Target.Big ->
      for k = 0 to n - 1 do
        write_u8 mem
          (Int64.add addr (Int64.of_int k))
          (Int64.to_int
             (Int64.logand (Int64.shift_right_logical value (8 * (n - 1 - k))) 0xFFL))
      done

let read_uint mem addr n =
  let off = Int64.to_int addr land (page_size - 1) in
  if off + n <= page_size then
    let p = page_of mem addr in
    match (n, mem.target.Target.endian) with
    | 1, _ -> Int64.of_int (Bytes.get_uint8 p off)
    | 2, Target.Little -> Int64.of_int (Bytes.get_uint16_le p off)
    | 2, Target.Big -> Int64.of_int (Bytes.get_uint16_be p off)
    | 4, Target.Little ->
        Int64.logand (Int64.of_int32 (Bytes.get_int32_le p off)) 0xFFFF_FFFFL
    | 4, Target.Big ->
        Int64.logand (Int64.of_int32 (Bytes.get_int32_be p off)) 0xFFFF_FFFFL
    | 8, Target.Little -> Bytes.get_int64_le p off
    | 8, Target.Big -> Bytes.get_int64_be p off
    | _ -> read_uint_slow mem addr n
  else read_uint_slow mem addr n

let write_uint mem addr n value =
  let off = Int64.to_int addr land (page_size - 1) in
  if off + n <= page_size then
    let p = page_of mem addr in
    match (n, mem.target.Target.endian) with
    | 1, _ -> Bytes.set_uint8 p off (Int64.to_int value land 0xFF)
    | 2, Target.Little -> Bytes.set_uint16_le p off (Int64.to_int value land 0xFFFF)
    | 2, Target.Big -> Bytes.set_uint16_be p off (Int64.to_int value land 0xFFFF)
    | 4, Target.Little -> Bytes.set_int32_le p off (Int64.to_int32 value)
    | 4, Target.Big -> Bytes.set_int32_be p off (Int64.to_int32 value)
    | 8, Target.Little -> Bytes.set_int64_le p off value
    | 8, Target.Big -> Bytes.set_int64_be p off value
    | _ -> write_uint_slow mem addr n value
  else write_uint_slow mem addr n value

(* The simulators' native word accesses (stack slots, argument area,
   spills) are always 8 bytes; give them a dedicated entry point. *)
let read_u64 mem addr =
  let off = Int64.to_int addr land (page_size - 1) in
  if off <= page_size - 8 then
    let p = page_of mem addr in
    match mem.target.Target.endian with
    | Target.Little -> Bytes.get_int64_le p off
    | Target.Big -> Bytes.get_int64_be p off
  else read_uint_slow mem addr 8

let write_u64 mem addr v =
  let off = Int64.to_int addr land (page_size - 1) in
  if off <= page_size - 8 then
    let p = page_of mem addr in
    match mem.target.Target.endian with
    | Target.Little -> Bytes.set_int64_le p off v
    | Target.Big -> Bytes.set_int64_be p off v
  else write_uint_slow mem addr 8 v

(* ---------- typed scalar access ---------- *)

let read_scalar mem ty addr : Eval.scalar =
  match ty with
  | Types.Bool -> Eval.B (read_u8 mem addr <> 0)
  | Types.Ubyte | Types.Sbyte | Types.Ushort | Types.Short | Types.Uint
  | Types.Int | Types.Ulong | Types.Long ->
      let n = Types.scalar_bytes mem.target ty in
      let raw = read_uint mem addr n in
      Eval.I (ty, Ir.normalize_int ty raw)
  | Types.Float ->
      let raw = read_uint mem addr 4 in
      Eval.F (ty, Int32.float_of_bits (Int64.to_int32 raw))
  | Types.Double ->
      let raw = read_uint mem addr 8 in
      Eval.F (ty, Int64.float_of_bits raw)
  | Types.Pointer _ ->
      let raw = read_uint mem addr mem.target.Target.ptr_size in
      Eval.P raw
  | _ -> invalid_arg ("Memory.read_scalar: " ^ Types.to_string ty)

let write_scalar mem ty addr (v : Eval.scalar) =
  match ty with
  | Types.Bool -> write_u8 mem addr (if Eval.to_bool v then 1 else 0)
  | Types.Ubyte | Types.Sbyte | Types.Ushort | Types.Short | Types.Uint
  | Types.Int | Types.Ulong | Types.Long ->
      write_uint mem addr (Types.scalar_bytes mem.target ty) (Eval.to_int64 v)
  | Types.Float ->
      write_uint mem addr 4
        (Int64.of_int32 (Int32.bits_of_float (Eval.to_float v)))
  | Types.Double -> write_uint mem addr 8 (Int64.bits_of_float (Eval.to_float v))
  | Types.Pointer _ ->
      write_uint mem addr mem.target.Target.ptr_size (Eval.to_int64 v)
  | _ -> invalid_arg ("Memory.write_scalar: " ^ Types.to_string ty)

(* ---------- heap allocator (runtime malloc/free for workloads) ---------- *)

let size_class n =
  let rec go c = if c >= n then c else go (c * 2) in
  go 16

let malloc mem n =
  if n < 0 then invalid_arg "Memory.malloc: negative size";
  let cls = size_class (max n 1) in
  let addr =
    match List.assoc_opt cls mem.free_lists with
    | Some (a :: rest) ->
        mem.free_lists <-
          (cls, rest) :: List.remove_assoc cls mem.free_lists;
        a
    | Some [] | None ->
        let a = mem.brk in
        mem.brk <- Int64.add mem.brk (Int64.of_int cls);
        a
  in
  Hashtbl.replace mem.allocated addr cls;
  (* zero the block so workloads see deterministic contents *)
  fill mem addr cls 0;
  addr

let free mem addr =
  if Int64.equal addr 0L then ()
  else
    match Hashtbl.find_opt mem.allocated addr with
    | None -> raise (Fault addr)
    | Some cls ->
        Hashtbl.remove mem.allocated addr;
        let existing =
          match List.assoc_opt cls mem.free_lists with Some l -> l | None -> []
        in
        mem.free_lists <-
          (cls, addr :: existing) :: List.remove_assoc cls mem.free_lists

let live_bytes mem =
  Hashtbl.fold (fun _ size acc -> acc + size) mem.allocated 0

(* ---------- bump allocation for images and stacks ---------- *)

type cursor = { mutable next : int64 }

let globals_cursor () = { next = globals_base }

let bump cursor ~align n =
  let a = Int64.of_int align in
  let aligned =
    Int64.mul (Int64.div (Int64.add cursor.next (Int64.sub a 1L)) a) a
  in
  cursor.next <- Int64.add aligned (Int64.of_int (max n 1));
  aligned
