(* The minimal runtime every execution engine (interpreter and machine
   simulators) provides to programs: heap allocation and console output.
   Output is captured in a buffer so differential tests can compare the
   interpreter against the simulated back-ends byte-for-byte. *)

open Llva

exception Exit_called of int

type t = { mem : Memory.t; out : Buffer.t }

let create mem = { mem; out = Buffer.create 256 }
let output rt = Buffer.contents rt.out

let read_cstring rt addr =
  let buf = Buffer.create 16 in
  let rec go a =
    let c = Memory.read_u8 rt.mem a in
    if c <> 0 then begin
      Buffer.add_char buf (Char.chr c);
      go (Int64.add a 1L)
    end
  in
  go addr;
  Buffer.contents buf

(* External function names the runtime implements. *)
let known =
  [
    "malloc"; "free"; "print_int"; "print_long"; "print_char"; "print_float";
    "print_str"; "print_nl"; "exit"; "abort"; "memcpy"; "memset"; "strlen";
  ]

let is_known name = List.mem name known

(* Dispatch an external call. Arguments and result use [Eval.scalar]. *)
let call rt name (args : Eval.scalar list) : Eval.scalar =
  match (name, args) with
  | "malloc", [ n ] ->
      Eval.P (Memory.malloc rt.mem (Int64.to_int (Eval.to_int64 n)))
  | "free", [ p ] ->
      Memory.free rt.mem (Eval.to_int64 p);
      Eval.Undef Types.Void
  | "print_int", [ v ] ->
      Buffer.add_string rt.out (Int64.to_string (Eval.to_int64 v));
      Eval.Undef Types.Void
  | "print_long", [ v ] ->
      Buffer.add_string rt.out (Int64.to_string (Eval.to_int64 v));
      Eval.Undef Types.Void
  | "print_char", [ v ] ->
      Buffer.add_char rt.out (Char.chr (Int64.to_int (Eval.to_int64 v) land 0xFF));
      Eval.Undef Types.Void
  | "print_float", [ v ] ->
      Buffer.add_string rt.out (Printf.sprintf "%.6g" (Eval.to_float v));
      Eval.Undef Types.Void
  | "print_str", [ p ] ->
      Buffer.add_string rt.out (read_cstring rt (Eval.to_int64 p));
      Eval.Undef Types.Void
  | "print_nl", [] ->
      Buffer.add_char rt.out '\n';
      Eval.Undef Types.Void
  | "exit", [ code ] -> raise (Exit_called (Int64.to_int (Eval.to_int64 code)))
  | "abort", [] -> raise (Exit_called 134)
  | "memcpy", [ dst; src; n ] ->
      let d = Eval.to_int64 dst and s = Eval.to_int64 src in
      let n = Int64.to_int (Eval.to_int64 n) in
      Memory.write_bytes rt.mem d (Memory.read_bytes rt.mem s n);
      Eval.P d
  | "memset", [ dst; c; n ] ->
      let d = Eval.to_int64 dst in
      let c = Int64.to_int (Eval.to_int64 c) land 0xFF in
      let n = Int64.to_int (Eval.to_int64 n) in
      Memory.fill rt.mem d n c;
      Eval.P d
  | "strlen", [ p ] ->
      let s = read_cstring rt (Eval.to_int64 p) in
      Eval.I (Types.Uint, Int64.of_int (String.length s))
  | _ ->
      invalid_arg
        (Printf.sprintf "Runtime.call: unknown external %s/%d" name
           (List.length args))
