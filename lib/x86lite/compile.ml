(* X86-lite instruction selection.

   One LLVA instruction expands to a handful of machine instructions; per
   the paper the X86 back-end "performs virtually no optimization and very
   simple register allocation resulting in significant spill code", which
   here is the [spill_everything] allocator (every SSA value lives in a
   stack slot; AX/CX/DX are scratch). An optional linear-scan mode keeps
   hot values in BX/SI/DI for the ablation benchmarks.

   Frame layout (BP-based):
     [BP+16+8k]  argument k (pushed by the caller, 8 bytes each)
     [BP+8]      return address
     [BP]        saved BP
     [BP-8(k+1)] spill slot k (value slots, then phi transfer slots)
     below       static alloca area, then dynamic allocas (SP) *)

open Llva
open X86

type cfunc = {
  cf_name : string;
  code : instr array;
  nargs : int;
  frame_slots : int; (* total 8-byte slots *)
}

type cmodule = {
  cm : Ir.modl;
  image : Vmem.Image.t;
  funcs : (string, cfunc) Hashtbl.t;
}

type ctx = {
  m : Ir.modl;
  env : Types.env;
  lt : Vmem.Layout.t;
  img : Vmem.Image.t;
  buf : instr list ref; (* reversed *)
  assignment : Codegen.Regalloc.assignment;
  plan : Codegen.Phiplan.t;
  block_ids : (int, int) Hashtbl.t; (* block id -> dense label index *)
  alloca_offsets : (int, int) Hashtbl.t; (* alloca instr id -> BP offset *)
  n_value_slots : int;
  total_frame : int;
  saved_int : (reg * mem) list; (* callee-saved registers and their slots *)
  saved_float : (freg * mem) list;
  label_alloc : int ref; (* synthetic labels beyond block labels *)
  extra_label_pos : (int, int) Hashtbl.t; (* synthetic label -> emit index *)
  label_boundary : int ref; (* emit index of the latest label: fusion fence *)
}

let fresh_label ctx =
  let l = !(ctx.label_alloc) in
  ctx.label_alloc := l + 1;
  l

let place_label ctx l =
  ctx.label_boundary := List.length !(ctx.buf);
  Hashtbl.replace ctx.extra_label_pos l (List.length !(ctx.buf))

(* Emit with a tiny peephole over the instruction being appended and the
   newest buffered one (no label may intervene; [label_boundary] is the
   fence):
     mov [slot], r  ;  mov r, [slot]    drop the reload
     mov [slot], r  ;  mov r2, [slot]   forward the register: mov r2, r
     mov r, r                           drop the self-move
   These fire even with an empty learned rewrite table, giving the
   offline superoptimizer ([lib/superopt]) a clean baseline. *)
let emit ctx i =
  let fused () = List.length !(ctx.buf) > !(ctx.label_boundary) in
  match (i, !(ctx.buf)) with
  | Mov (R r, R r'), _ when r = r' -> ()
  | Mov (R r, M m), Mov (M m', R r') :: _ when r = r' && m = m' && fused () ->
      ()
  | Mov (R r, M m), Mov (M m', R r') :: _ when m = m' && fused () ->
      ctx.buf := Mov (R r, R r') :: !(ctx.buf)
  | _ -> ctx.buf := i :: !(ctx.buf)

let slot_mem _ctx k = { base = bp; disp = -8 * (k + 1) }
let transfer_mem ctx t = slot_mem ctx (ctx.n_value_slots + t)

let label_of ctx (b : Ir.block) = Hashtbl.find ctx.block_ids b.Ir.blid

let is_float_ty ctx ty =
  match Types.resolve ctx.env ty with
  | Types.Float | Types.Double -> true
  | _ -> false

let is_single ctx ty = Types.equal (Types.resolve ctx.env ty) Types.Float

let width_of ctx ty =
  width_of_type ctx.m.Ir.target (Types.resolve ctx.env ty)

let signed_of ctx ty =
  match Types.resolve ctx.env ty with
  | t when Types.is_integer t -> Types.is_signed t
  | Types.Bool -> false
  | Types.Pointer _ -> false
  | _ -> false

(* location of an SSA value id *)
let loc_of ctx vid =
  match Codegen.Regalloc.location_opt ctx.assignment vid with
  | Some (Codegen.Regalloc.Reg r) -> R r
  | Some (Codegen.Regalloc.Slot s) -> M (slot_mem ctx s)
  | None -> I 0L (* dead value: never read *)

let symbol_addr ctx name =
  match Vmem.Image.symbol_address ctx.img name with
  | Some a -> a
  | None -> invalid_arg ("x86lite: unresolved symbol " ^ name)

let scalar_const_bits ctx (c : Ir.const) : int64 =
  match c.Ir.ckind with
  | Ir.Cbool b -> if b then 1L else 0L
  | Ir.Cint v -> v
  | Ir.Cnull -> 0L
  | Ir.Czero -> 0L
  | Ir.Cglobal_ref name -> symbol_addr ctx name
  | Ir.Cfloat _ -> invalid_arg "x86lite: float const in int context"
  | _ -> invalid_arg "x86lite: aggregate constant operand"

(* Bring an integer-class value into the given scratch register. *)
let load_int ctx (v : Ir.value) (r : reg) =
  match v with
  | Ir.Const c -> emit ctx (Mov (R r, I (scalar_const_bits ctx c)))
  | Ir.Vundef _ -> emit ctx (Mov (R r, I 0L))
  | Ir.Vglobal g -> emit ctx (Mov (R r, I (symbol_addr ctx g.Ir.gname)))
  | Ir.Vfunc f -> emit ctx (Mov (R r, I (symbol_addr ctx f.Ir.fname)))
  | Ir.Vreg i -> emit ctx (Mov (R r, loc_of ctx i.Ir.iid))
  | Ir.Varg a -> emit ctx (Mov (R r, loc_of ctx a.Ir.aid))
  | Ir.Vblock _ -> invalid_arg "x86lite: label operand in value context"

(* A source operand usable directly in a register-memory instruction:
   constants become immediates, allocated values their home location. *)
let src_operand ctx (v : Ir.value) : operand =
  match v with
  | Ir.Const c -> I (scalar_const_bits ctx c)
  | Ir.Vundef _ -> I 0L
  | Ir.Vglobal g -> I (symbol_addr ctx g.Ir.gname)
  | Ir.Vfunc f -> I (symbol_addr ctx f.Ir.fname)
  | Ir.Vreg i -> loc_of ctx i.Ir.iid
  | Ir.Varg a -> loc_of ctx a.Ir.aid
  | Ir.Vblock _ -> invalid_arg "x86lite: label operand in value context"

(* Bring a float-class value into the given float scratch register. *)
let load_float ctx (v : Ir.value) (f : freg) =
  match v with
  | Ir.Const { ckind = Ir.Cfloat x; Ir.cty } ->
      emit ctx (Fconst (f, Eval.round_float cty x))
  | Ir.Const { ckind = Ir.Czero; _ } -> emit ctx (Fconst (f, 0.0))
  | Ir.Vundef _ -> emit ctx (Fconst (f, 0.0))
  | Ir.Vreg i -> (
      match Codegen.Regalloc.location_opt ctx.assignment i.Ir.iid with
      | Some (Codegen.Regalloc.Reg r) -> emit ctx (Fmov (f, r))
      | Some (Codegen.Regalloc.Slot s) ->
          emit ctx (Fload (f, slot_mem ctx s, false))
      | None -> emit ctx (Fconst (f, 0.0)))
  | Ir.Varg a -> (
      match Codegen.Regalloc.location_opt ctx.assignment a.Ir.aid with
      | Some (Codegen.Regalloc.Reg r) -> emit ctx (Fmov (f, r))
      | Some (Codegen.Regalloc.Slot s) ->
          emit ctx (Fload (f, slot_mem ctx s, false))
      | None -> emit ctx (Fconst (f, 0.0)))
  | _ -> invalid_arg "x86lite: bad float operand"

(* Store scratch register into a value's home location. *)
let store_int ctx vid (r : reg) =
  match loc_of ctx vid with
  | R d -> if d <> r then emit ctx (Mov (R d, R r))
  | M m -> emit ctx (Mov (M m, R r))
  | I _ -> () (* dead *)

let store_float ctx vid (f : freg) =
  match Codegen.Regalloc.location_opt ctx.assignment vid with
  | Some (Codegen.Regalloc.Reg d) -> if d <> f then emit ctx (Fmov (d, f))
  | Some (Codegen.Regalloc.Slot s) ->
      emit ctx (Fstore (slot_mem ctx s, f, false))
  | None -> ()

let cc_of_cmp signed (c : Ir.cmp) =
  match (c, signed) with
  | Ir.Eq, _ -> Eq
  | Ir.Ne, _ -> Ne
  | Ir.Lt, true -> Lt
  | Ir.Gt, true -> Gt
  | Ir.Le, true -> Le
  | Ir.Ge, true -> Ge
  | Ir.Lt, false -> Ltu
  | Ir.Gt, false -> Gtu
  | Ir.Le, false -> Leu
  | Ir.Ge, false -> Geu

(* move a value (either class) into a phi transfer slot *)
let copy_to_transfer ctx (c : Codegen.Phiplan.edge_copy) =
  let slot = transfer_mem ctx c.Codegen.Phiplan.transfer_slot in
  if is_float_ty ctx c.Codegen.Phiplan.phi.Ir.ity then begin
    load_float ctx c.Codegen.Phiplan.src 0;
    emit ctx (Fstore (slot, 0, false))
  end
  else begin
    load_int ctx c.Codegen.Phiplan.src ax;
    emit ctx (Mov (M slot, R ax))
  end

let copy_from_transfer ctx (slot_idx, (phi : Ir.instr)) =
  let slot = transfer_mem ctx slot_idx in
  if is_float_ty ctx phi.Ir.ity then begin
    emit ctx (Fload (0, slot, false));
    store_float ctx phi.Ir.iid 0
  end
  else begin
    emit ctx (Mov (R ax, M slot));
    store_int ctx phi.Ir.iid ax
  end

(* ---------- calls ---------- *)

let lower_call ctx (i : Ir.instr) ~except =
  let callee = Ir.call_callee i in
  let args = Ir.call_args i in
  let n = List.length args in
  if n > 0 then emit ctx (AddSp (-8 * n));
  List.iteri
    (fun k arg ->
      if is_float_ty ctx (Ir.type_of_value arg) then begin
        load_float ctx arg 0;
        emit ctx (Fstore ({ base = sp; disp = 8 * k }, 0, false))
      end
      else begin
        load_int ctx arg ax;
        emit ctx (Mov (M { base = sp; disp = 8 * k }, R ax))
      end)
    args;
  (match (callee, except) with
  | Ir.Vfunc f, None -> emit ctx (CallSym f.Ir.fname)
  | Ir.Vfunc f, Some lbl -> emit ctx (CallSymI (f.Ir.fname, lbl))
  | _, None ->
      load_int ctx callee cx;
      emit ctx (CallInd (R cx))
  | _, Some lbl ->
      load_int ctx callee cx;
      emit ctx (CallIndI (R cx, lbl)));
  if n > 0 then emit ctx (AddSp (8 * n));
  (* the result arrives in AX / F0 *)
  if not (Types.equal i.Ir.ity Types.Void) then
    if is_float_ty ctx i.Ir.ity then store_float ctx i.Ir.iid 0
    else store_int ctx i.Ir.iid ax

(* ---------- per-instruction selection ---------- *)

let lower_instr ctx (i : Ir.instr) =
  match i.Ir.op with
  | Ir.Phi -> () (* handled by the transfer-slot copies *)
  | Ir.Binop op -> (
      let ty = i.Ir.ity in
      if is_float_ty ctx ty then begin
        let fop =
          match op with
          | Ir.Add -> Fadd
          | Ir.Sub -> Fsub
          | Ir.Mul -> Fmul
          | Ir.Div -> Fdiv
          | Ir.Rem -> Frem
          | _ -> invalid_arg "x86lite: bitwise op on float"
        in
        load_float ctx i.Ir.operands.(0) 0;
        load_float ctx i.Ir.operands.(1) 1;
        emit ctx (Falu (fop, is_single ctx ty, 0, 1));
        store_float ctx i.Ir.iid 0
      end
      else begin
        let w = width_of ctx ty and s = signed_of ctx ty in
        load_int ctx i.Ir.operands.(0) ax;
        match op with
        | Ir.Add | Ir.Sub | Ir.Mul | Ir.And | Ir.Or | Ir.Xor ->
            let aop =
              match op with
              | Ir.Add -> Add
              | Ir.Sub -> Sub
              | Ir.Mul -> Imul
              | Ir.And -> And
              | Ir.Or -> Or
              | Ir.Xor -> Xor
              | _ -> assert false
            in
            emit ctx (Alu (aop, w, s, R ax, src_operand ctx i.Ir.operands.(1)));
            store_int ctx i.Ir.iid ax
        | Ir.Div | Ir.Rem ->
            let src = src_operand ctx i.Ir.operands.(1) in
            let src = match src with I _ | R _ -> src | M _ -> (load_int ctx i.Ir.operands.(1) dx; R dx) in
            let mk = if op = Ir.Div then Div (w, s, R ax, src) else Rem (w, s, R ax, src) in
            if i.Ir.exceptions_enabled then emit ctx mk
            else begin
              (* ExceptionsEnabled=false: a non-trapping division; guard
                 against zero and produce 0 (the translator's encoding of
                 an ignored exception, §3.3) *)
              let skip = fresh_label ctx and done_ = fresh_label ctx in
              emit ctx (Cmp (w, s, src, I 0L));
              emit ctx (Jcc (Eq, skip));
              emit ctx mk;
              emit ctx (Jmp done_);
              place_label ctx skip;
              emit ctx (Mov (R ax, I 0L));
              place_label ctx done_
            end;
            store_int ctx i.Ir.iid ax
        | Ir.Shl | Ir.Shr ->
            let count =
              match src_operand ctx i.Ir.operands.(1) with
              | I c -> I c
              | _ ->
                  load_int ctx i.Ir.operands.(1) cx;
                  R cx
            in
            emit ctx (Shift (op = Ir.Shl, w, s, R ax, count));
            store_int ctx i.Ir.iid ax
      end)
  | Ir.Setcc c ->
      let opty = Types.resolve ctx.env (Ir.type_of_value i.Ir.operands.(0)) in
      if Types.is_fp opty then begin
        load_float ctx i.Ir.operands.(0) 0;
        load_float ctx i.Ir.operands.(1) 1;
        emit ctx (Fcmp (0, 1));
        emit ctx (Setcc (cc_of_cmp true c, ax));
        store_int ctx i.Ir.iid ax
      end
      else begin
        let w = width_of ctx opty in
        let s = signed_of ctx opty in
        load_int ctx i.Ir.operands.(0) ax;
        emit ctx (Cmp (w, s, R ax, src_operand ctx i.Ir.operands.(1)));
        emit ctx (Setcc (cc_of_cmp s c, ax));
        store_int ctx i.Ir.iid ax
      end
  | Ir.Load ->
      let elem = Types.resolve ctx.env i.Ir.ity in
      load_int ctx i.Ir.operands.(0) cx;
      let guard_end =
        if i.Ir.exceptions_enabled then None
        else begin
          (* non-trapping load: null pointer yields 0 *)
          let skip = fresh_label ctx and done_ = fresh_label ctx in
          emit ctx (Cmp (W64, false, R cx, I 0L));
          emit ctx (Jcc (Eq, skip));
          Some (skip, done_)
        end
      in
      if Types.is_fp elem then
        emit ctx (Fload (0, { base = cx; disp = 0 }, is_single ctx elem))
      else
        emit ctx
          (Mload (ax, { base = cx; disp = 0 }, width_of ctx elem,
                  signed_of ctx elem));
      (match guard_end with
      | Some (skip, done_) ->
          emit ctx (Jmp done_);
          place_label ctx skip;
          if Types.is_fp elem then emit ctx (Fconst (0, 0.0))
          else emit ctx (Mov (R ax, I 0L));
          place_label ctx done_
      | None -> ());
      if Types.is_fp elem then store_float ctx i.Ir.iid 0
      else store_int ctx i.Ir.iid ax
  | Ir.Store ->
      let vty = Types.resolve ctx.env (Ir.type_of_value i.Ir.operands.(0)) in
      load_int ctx i.Ir.operands.(1) cx;
      let skip_store =
        if i.Ir.exceptions_enabled then None
        else begin
          let skip = fresh_label ctx in
          emit ctx (Cmp (W64, false, R cx, I 0L));
          emit ctx (Jcc (Eq, skip));
          Some skip
        end
      in
      if Types.is_fp vty then begin
        load_float ctx i.Ir.operands.(0) 0;
        emit ctx (Fstore ({ base = cx; disp = 0 }, 0, is_single ctx vty))
      end
      else begin
        load_int ctx i.Ir.operands.(0) ax;
        emit ctx (Mstore ({ base = cx; disp = 0 }, ax, width_of ctx vty))
      end;
      (match skip_store with
      | Some skip -> place_label ctx skip
      | None -> ())
  | Ir.Getelementptr ->
      load_int ctx i.Ir.operands.(0) ax;
      let ptr_ty = Ir.type_of_value i.Ir.operands.(0) in
      let elem = Types.pointee ctx.env ptr_ty in
      (* walk the indexes, folding constants into a displacement *)
      let disp = ref 0 in
      let cur_ty = ref elem in
      Array.iteri
        (fun k op ->
          if k >= 1 then begin
            let stride_ty = if k = 1 then elem else !cur_ty in
            match (k, Types.resolve ctx.env (if k = 1 then Types.Pointer elem else stride_ty)) with
            | 1, _ -> (
                (* first index scales by sizeof(elem) *)
                let sz = Vmem.Layout.size_of ctx.lt elem in
                match op with
                | Ir.Const { ckind = Ir.Cint n; _ } ->
                    disp := !disp + (Int64.to_int n * sz)
                | _ ->
                    load_int ctx op dx;
                    if sz <> 1 then emit ctx (Alu (Imul, W64, true, R dx, I (Int64.of_int sz)));
                    emit ctx (Alu (Add, W64, true, R ax, R dx)))
            | _, Types.Struct fields ->
                let fk =
                  match op with
                  | Ir.Const { ckind = Ir.Cint n; _ } -> Int64.to_int n
                  | _ -> invalid_arg "x86lite: variable struct index"
                in
                disp := !disp + Vmem.Layout.field_offset ctx.lt fields fk;
                cur_ty := List.nth fields fk
            | _, Types.Array (_, e) -> (
                let sz = Vmem.Layout.size_of ctx.lt e in
                (match op with
                | Ir.Const { ckind = Ir.Cint n; _ } ->
                    disp := !disp + (Int64.to_int n * sz)
                | _ ->
                    load_int ctx op dx;
                    if sz <> 1 then
                      emit ctx (Alu (Imul, W64, true, R dx, I (Int64.of_int sz)));
                    emit ctx (Alu (Add, W64, true, R ax, R dx)));
                cur_ty := e)
            | _, t ->
                invalid_arg ("x86lite: gep into " ^ Types.to_string t)
          end)
        i.Ir.operands;
      if !disp <> 0 then emit ctx (Alu (Add, W64, true, R ax, I (Int64.of_int !disp)));
      if ctx.m.Ir.target.Target.ptr_size = 4 then emit ctx (Ext (ax, W32, false));
      store_int ctx i.Ir.iid ax
  | Ir.Alloca -> (
      match Hashtbl.find_opt ctx.alloca_offsets i.Ir.iid with
      | Some off ->
          emit ctx (Lea (ax, { base = bp; disp = -off }));
          store_int ctx i.Ir.iid ax
      | None ->
          (* dynamic alloca: size = count * sizeof(elem), 8-aligned *)
          let elem = Types.pointee ctx.env i.Ir.ity in
          let sz = Vmem.Layout.size_of ctx.lt elem in
          load_int ctx i.Ir.operands.(0) ax;
          if sz <> 1 then emit ctx (Alu (Imul, W64, true, R ax, I (Int64.of_int sz)));
          emit ctx (Alu (Add, W64, true, R ax, I 7L));
          emit ctx (Alu (And, W64, true, R ax, I (-8L)));
          emit ctx (SubSpDyn (dx, ax));
          store_int ctx i.Ir.iid dx)
  | Ir.Cast ->
      let src_ty = Types.resolve ctx.env (Ir.type_of_value i.Ir.operands.(0)) in
      let dst_ty = Types.resolve ctx.env i.Ir.ity in
      if Types.is_fp dst_ty then
        if Types.is_fp src_ty then begin
          load_float ctx i.Ir.operands.(0) 0;
          if is_single ctx dst_ty then emit ctx (Fround 0);
          store_float ctx i.Ir.iid 0
        end
        else begin
          load_int ctx i.Ir.operands.(0) ax;
          emit ctx (Cvtif (0, ax, Types.is_signed src_ty));
          if is_single ctx dst_ty then emit ctx (Fround 0);
          store_float ctx i.Ir.iid 0
        end
      else if Types.is_fp src_ty then begin
        load_float ctx i.Ir.operands.(0) 0;
        let w = width_of ctx dst_ty and s = signed_of ctx dst_ty in
        emit ctx (Cvtfi (ax, 0, w, s));
        store_int ctx i.Ir.iid ax
      end
      else begin
        load_int ctx i.Ir.operands.(0) ax;
        (match dst_ty with
        | Types.Bool ->
            emit ctx (Cmp (W64, false, R ax, I 0L));
            emit ctx (Setcc (Ne, ax))
        | Types.Pointer _ ->
            if ctx.m.Ir.target.Target.ptr_size = 4 then
              emit ctx (Ext (ax, W32, false))
        | t when Types.is_integer t ->
            emit ctx (Ext (ax, width_of ctx t, Types.is_signed t))
        | _ -> ());
        store_int ctx i.Ir.iid ax
      end
  | Ir.Call -> lower_call ctx i ~except:None
  | Ir.Invoke ->
      let except = label_of ctx (Ir.block_of_value i.Ir.operands.(2)) in
      let normal = label_of ctx (Ir.block_of_value i.Ir.operands.(1)) in
      lower_call ctx i ~except:(Some except);
      emit ctx (Jmp normal)
  | Ir.Unwind -> emit ctx Unwind
  | Ir.Ret ->
      if Array.length i.Ir.operands = 1 then begin
        let v = i.Ir.operands.(0) in
        if is_float_ty ctx (Ir.type_of_value v) then begin
          load_float ctx v 0;
          emit ctx (Fpushret 0)
        end
        else load_int ctx v ax
      end;
      (* epilogue: restore callee-saved registers, tear down the frame *)
      List.iter (fun (r, m) -> emit ctx (Mov (R r, M m))) ctx.saved_int;
      List.iter (fun (fr, m) -> emit ctx (Fload (fr, m, false))) ctx.saved_float;
      emit ctx (Mov (R sp, R bp));
      emit ctx (Pop bp);
      emit ctx Ret
  | Ir.Br ->
      if Array.length i.Ir.operands = 1 then
        emit ctx (Jmp (label_of ctx (Ir.block_of_value i.Ir.operands.(0))))
      else begin
        emit ctx (Cmp (W8, false, src_operand ctx i.Ir.operands.(0), I 0L));
        emit ctx (Jcc (Ne, label_of ctx (Ir.block_of_value i.Ir.operands.(1))));
        emit ctx (Jmp (label_of ctx (Ir.block_of_value i.Ir.operands.(2))))
      end
  | Ir.Mbr ->
      let w = width_of ctx (Ir.type_of_value i.Ir.operands.(0)) in
      let s = signed_of ctx (Ir.type_of_value i.Ir.operands.(0)) in
      load_int ctx i.Ir.operands.(0) ax;
      let rec cases k =
        if k + 1 < Array.length i.Ir.operands then begin
          (match i.Ir.operands.(k) with
          | Ir.Const { ckind = Ir.Cint c; _ } ->
              emit ctx (Cmp (w, s, R ax, I c));
              emit ctx
                (Jcc (Eq, label_of ctx (Ir.block_of_value i.Ir.operands.(k + 1))))
          | _ -> ());
          cases (k + 2)
        end
      in
      cases 2;
      emit ctx (Jmp (label_of ctx (Ir.block_of_value i.Ir.operands.(1))))



let negate_cc = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Ge -> Lt
  | Gt -> Le
  | Le -> Gt
  | Ltu -> Geu
  | Geu -> Ltu
  | Gtu -> Leu
  | Leu -> Gtu

(* "jcc a; jmp b" where a is the fall-through: invert the condition so the
   unconditional jump becomes removable by [relax] *)
let invert_branches (code : instr array) =
  let n = Array.length code in
  Array.iteri
    (fun k i ->
      if k + 2 <= n - 1 || k + 1 <= n - 1 then
        match (i, if k + 1 < n then Some code.(k + 1) else None) with
        | Jcc (cc, a), Some (Jmp b) when a = k + 2 ->
            code.(k) <- Jcc (negate_cc cc, b);
            code.(k + 1) <- Jmp a
        | _ -> ())
    code;
  code

(* Remove jumps to the immediately following instruction (fall-through),
   remapping all label targets; block layout thus affects both code size
   and cycle counts, which the LLEE trace optimizer exploits. *)
let rec relax (code : instr array) =
  let n = Array.length code in
  let rec find k =
    if k >= n then None
    else
      match code.(k) with
      | Jmp l when l = k + 1 -> Some k
      | _ -> find (k + 1)
  in
  match find 0 with
  | None -> code
  | Some k ->
      let adjust l = if l > k then l - 1 else l in
      let out =
        Array.init (n - 1) (fun j ->
            let i = if j < k then code.(j) else code.(j + 1) in
            match i with
            | Jmp l -> Jmp (adjust l)
            | Jcc (cc, l) -> Jcc (cc, adjust l)
            | CallSymI (s, l) -> CallSymI (s, adjust l)
            | CallIndI (o, l) -> CallIndI (o, adjust l)
            | other -> other)
      in
      relax out

(* ---------- learned peephole rewriting ----------

   [apply_rules] rewrites straight-line windows of the finished code
   array against an oracle-verified rewrite table built offline by the
   superoptimizer (lib/superopt). Rules are stored in *canonical* form:
   BP-relative frame-slot displacements are renamed to sentinel values
   [slot_var_base + 8k] in first-occurrence order, so a single rule
   covers every concrete frame offset. A window is canonicalized only
   when every memory operand is a BP-based 8-byte-aligned full-word slot
   and no operand names SP or BP directly — distinct aligned slots can
   never overlap, so execution is isomorphic under slot renaming and a
   rule verified on one instantiation holds for all of them. Any other
   window (Lea, SP-relative or unaligned memory, stack adjustment,
   calls, ...) is left concrete, where it can never match a canonical
   rule. *)

let slot_var_base = 1_000_000

exception Not_canon

let canon_operand vars = function
  | M { base; disp }
    when base = bp && disp mod 8 = 0 && abs disp < slot_var_base ->
      let k =
        match List.assoc_opt disp !vars with
        | Some k -> k
        | None ->
            let k = List.length !vars in
            vars := !vars @ [ (disp, k) ];
            k
      in
      M { base = bp; disp = slot_var_base + (8 * k) }
  | M _ -> raise Not_canon
  | R r when r = sp || r = bp -> raise Not_canon
  | o -> o

let canon_instr vars i =
  match i with
  | Mov (a, b) -> Mov (canon_operand vars a, canon_operand vars b)
  | Alu (op, w, s, a, b) ->
      Alu (op, w, s, canon_operand vars a, canon_operand vars b)
  | Shift (l, w, s, a, b) ->
      Shift (l, w, s, canon_operand vars a, canon_operand vars b)
  | Cmp (w, s, a, b) -> Cmp (w, s, canon_operand vars a, canon_operand vars b)
  | (Ext (r, _, _) | Setcc (_, r)) when r = sp || r = bp -> raise Not_canon
  | Ext _ | Setcc _ -> i
  | _ -> raise Not_canon

(* Canonicalize a window. Returns the canonical form plus the concrete
   displacement behind each slot variable; windows outside the
   rewritable subset come back unchanged with no variables, so they
   match no rule. *)
let canon_window (w : instr list) : instr list * int array =
  let vars = ref [] in
  match List.map (canon_instr vars) w with
  | cw -> (cw, Array.of_list (List.map fst !vars))
  | exception Not_canon -> (w, [||])

(* Substitute concrete slot displacements back into a canonical
   instruction sequence (a rule's right-hand side). *)
let concretize (vars : int array) (w : instr list) : instr list =
  let op = function
    | M { base; disp } when disp >= slot_var_base ->
        let k = (disp - slot_var_base) / 8 in
        if k >= Array.length vars then raise Not_canon;
        M { base; disp = vars.(k) }
    | o -> o
  in
  List.map
    (fun i ->
      match i with
      | Mov (a, b) -> Mov (op a, op b)
      | Alu (o2, w_, s, a, b) -> Alu (o2, w_, s, op a, op b)
      | Shift (l, w_, s, a, b) -> Shift (l, w_, s, op a, op b)
      | Cmp (w_, s, a, b) -> Cmp (w_, s, op a, op b)
      | i -> i)
    w

type peep_stats = { mutable rewrites : int; mutable cycles_saved : int }

let fresh_peep_stats () = { rewrites = 0; cycles_saved = 0 }

let window_cycles w = List.fold_left (fun acc i -> acc + cycles_of i) 0 w

(* One left-to-right rewriting pass. Windows that contain a branch
   target strictly inside them are never rewritten (jumping into the
   middle of a replacement would be meaningless); targets at a window's
   first instruction are fine, since replacements are dropped in at
   exactly that position. All branch targets are remapped afterwards. *)
let apply_rules_pass ~index ~max_len (code : instr array) =
  let n = Array.length code in
  let is_target = Array.make (n + 2) false in
  Array.iter
    (function
      | Jmp l | Jcc (_, l) | CallSymI (_, l) | CallIndI (_, l) ->
          if l >= 0 && l < n + 2 then is_target.(l) <- true
      | _ -> ())
    code;
  let out = ref [] and out_len = ref 0 in
  let new_index = Array.make (n + 1) 0 in
  let rewrites = ref 0 and saved = ref 0 in
  let i = ref 0 in
  while !i < n do
    new_index.(!i) <- !out_len;
    let applied = ref false in
    let k = ref (min max_len (n - !i)) in
    while (not !applied) && !k >= 1 do
      let interior = ref false in
      for j = !i + 1 to !i + !k - 1 do
        if is_target.(j) then interior := true
      done;
      (if not !interior then
         let window = Array.to_list (Array.sub code !i !k) in
         let cw, vars = canon_window window in
         match Hashtbl.find_opt index cw with
         | Some rhs -> (
             match concretize vars rhs with
             | rhs_c ->
                 let before = window_cycles window
                 and after = window_cycles rhs_c in
                 if after < before then begin
                   List.iter
                     (fun ins ->
                       out := ins :: !out;
                       incr out_len)
                     rhs_c;
                   incr rewrites;
                   saved := !saved + (before - after);
                   i := !i + !k;
                   applied := true
                 end
             | exception Not_canon -> ())
         | None -> ());
      if not !applied then decr k
    done;
    if not !applied then begin
      out := code.(!i) :: !out;
      incr out_len;
      incr i
    end
  done;
  new_index.(n) <- !out_len;
  let remap l = if l >= 0 && l <= n then new_index.(min l n) else l in
  let arr =
    Array.map
      (function
        | Jmp l -> Jmp (remap l)
        | Jcc (cc, l) -> Jcc (cc, remap l)
        | CallSymI (s, l) -> CallSymI (s, remap l)
        | CallIndI (o, l) -> CallIndI (o, remap l)
        | other -> other)
      (Array.of_list (List.rev !out))
  in
  (arr, !rewrites, !saved)

(* Apply a rewrite table (canonical lhs/rhs pairs) to fixpoint, bounded
   at four passes. Purely deterministic: same table in, same code out.
   Returns the rewritten code plus (rewrite count, static cycles
   saved). *)
let apply_rules ~(rules : (instr list * instr list) list)
    (code : instr array) : instr array * int * int =
  if rules = [] then (code, 0, 0)
  else begin
    let index = Hashtbl.create 64 in
    let max_len = ref 1 in
    List.iter
      (fun (lhs, rhs) ->
        if lhs <> [] && not (Hashtbl.mem index lhs) then begin
          Hashtbl.replace index lhs rhs;
          max_len := max !max_len (List.length lhs)
        end)
      rules;
    let rec go code total_r total_s passes =
      if passes = 0 then (code, total_r, total_s)
      else
        let code', r, s = apply_rules_pass ~index ~max_len:!max_len code in
        if r = 0 then (code', total_r, total_s)
        else go code' (total_r + r) (total_s + s) (passes - 1)
    in
    go code 0 0 4
  end

(* ---------- per-function ---------- *)

let compile_function (m : Ir.modl) (img : Vmem.Image.t)
    ?(linear_scan = false) ?(peep = []) ?peep_stats (f : Ir.func) : cfunc =
  let env = Ir.type_env m in
  let lt = Vmem.Layout.for_module m in
  let ivs = Codegen.Intervals.build ~env f in
  let assignment =
    if linear_scan then
      Codegen.Regalloc.linear_scan ~int_regs:allocatable_int
        ~float_regs:allocatable_float ivs
    else Codegen.Regalloc.spill_everything ivs
  in
  let plan = Codegen.Phiplan.build f in
  (* static alloca area *)
  let alloca_offsets = Hashtbl.create 8 in
  let n_value_slots = assignment.Codegen.Regalloc.n_slots in
  let base = 8 * (n_value_slots + plan.Codegen.Phiplan.n_transfer_slots) in
  let alloca_area = ref 0 in
  Ir.iter_instrs
    (fun i ->
      if i.Ir.op = Ir.Alloca && Array.length i.Ir.operands = 0 then begin
        let elem = Types.pointee env i.Ir.ity in
        let sz = (Vmem.Layout.size_of lt elem + 7) / 8 * 8 in
        alloca_area := !alloca_area + sz;
        Hashtbl.replace alloca_offsets i.Ir.iid (base + !alloca_area)
      end)
    f;
  (* callee-saved register save area (linear-scan mode only) *)
  let saved_int = ref [] and saved_float = ref [] in
  let save_area = ref 0 in
  List.iter
    (fun r ->
      save_area := !save_area + 8;
      saved_int :=
        (r, { base = bp; disp = -(base + !alloca_area + !save_area) }) :: !saved_int)
    assignment.Codegen.Regalloc.used_regs_int;
  List.iter
    (fun fr ->
      save_area := !save_area + 8;
      saved_float :=
        (fr, { base = bp; disp = -(base + !alloca_area + !save_area) })
        :: !saved_float)
    assignment.Codegen.Regalloc.used_regs_float;
  let total_frame = base + !alloca_area + !save_area in
  let block_ids = Hashtbl.create 16 in
  List.iteri
    (fun k (b : Ir.block) -> Hashtbl.replace block_ids b.Ir.blid k)
    f.Ir.fblocks;
  let ctx =
    {
      m;
      env;
      lt;
      img;
      buf = ref [];
      assignment;
      plan;
      block_ids;
      alloca_offsets;
      n_value_slots;
      total_frame;
      saved_int = !saved_int;
      saved_float = !saved_float;
      label_alloc = ref (List.length f.Ir.fblocks);
      extra_label_pos = Hashtbl.create 8;
      label_boundary = ref 0;
    }
  in
  (* prologue *)
  emit ctx (Push (R bp));
  emit ctx (Mov (R bp, R sp));
  if total_frame > 0 then emit ctx (AddSp (-total_frame));
  List.iter (fun (r, m) -> emit ctx (Mov (M m, R r))) ctx.saved_int;
  List.iter (fun (fr, m) -> emit ctx (Fstore (m, fr, false))) ctx.saved_float;
  (* spill incoming arguments to their home locations *)
  List.iteri
    (fun k (a : Ir.arg) ->
      let src = { base = bp; disp = 16 + (8 * k) } in
      if is_float_ty ctx a.Ir.aty then begin
        emit ctx (Fload (0, src, false));
        store_float ctx a.Ir.aid 0
      end
      else begin
        emit ctx (Mov (R ax, M src));
        store_int ctx a.Ir.aid ax
      end)
    f.Ir.fargs;
  (* body: per block, marking label positions *)
  let label_pos = Hashtbl.create 16 in
  List.iter
    (fun (b : Ir.block) ->
      ctx.label_boundary := List.length !(ctx.buf);
      Hashtbl.replace label_pos (label_of ctx b) (List.length !(ctx.buf));
      List.iter (fun c -> copy_from_transfer ctx c) (Codegen.Phiplan.start_copies plan b);
      List.iter
        (fun (i : Ir.instr) ->
          if Ir.is_terminator i then
            (* phi edge copies happen before the terminator *)
            List.iter (fun c -> copy_to_transfer ctx c)
              (Codegen.Phiplan.end_copies plan b);
          lower_instr ctx i)
        b.Ir.instrs)
    f.Ir.fblocks;
  (* resolve labels: Jmp/Jcc targets are label indices; rewrite to code
     positions *)
  let code = Array.of_list (List.rev !(ctx.buf)) in
  let resolve l =
    match Hashtbl.find_opt label_pos l with
    | Some p -> p
    | None -> (
        match Hashtbl.find_opt ctx.extra_label_pos l with
        | Some p -> p
        | None -> invalid_arg "x86lite: unresolved label")
  in
  let code =
    Array.map
      (fun ins ->
        match ins with
        | Jmp l -> Jmp (resolve l)
        | Jcc (cc, l) -> Jcc (cc, resolve l)
        | CallSymI (s, l) -> CallSymI (s, resolve l)
        | CallIndI (o, l) -> CallIndI (o, resolve l)
        | other -> other)
      code
  in
  let code = relax (invert_branches code) in
  let code =
    match peep with
    | [] -> code
    | rules ->
        let code, r, s = apply_rules ~rules code in
        (match peep_stats with
        | Some ps ->
            ps.rewrites <- ps.rewrites + r;
            ps.cycles_saved <- ps.cycles_saved + s
        | None -> ());
        relax code
  in
  {
    cf_name = f.Ir.fname;
    code;
    nargs = List.length f.Ir.fargs;
    frame_slots = total_frame / 8;
  }

let compile_module ?(linear_scan = false) ?(peep = []) ?peep_stats
    (m : Ir.modl) : cmodule =
  let image = Vmem.Image.load m in
  let funcs = Hashtbl.create 32 in
  List.iter
    (fun (f : Ir.func) ->
      if not (Ir.is_declaration f) then
        Hashtbl.replace funcs f.Ir.fname
          (compile_function m image ~linear_scan ~peep ?peep_stats f))
    m.Ir.funcs;
  { cm = m; image; funcs }

(* ---------- metrics ---------- *)

let func_instr_count cf = Array.length cf.code

let func_code_size cf =
  Array.fold_left (fun acc i -> acc + size_of i) 0 cf.code

let module_instr_count cm =
  Hashtbl.fold (fun _ cf acc -> acc + func_instr_count cf) cm.funcs 0

(* native code bytes + global data, comparable to Table 2's native size *)
let module_code_size cm =
  Hashtbl.fold (fun _ cf acc -> acc + func_code_size cf) cm.funcs 0

let disassemble cf =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (cf.cf_name ^ ":\n");
  Array.iteri
    (fun k i -> Buffer.add_string buf (Printf.sprintf "  %3d: %s\n" k (to_string i)))
    cf.code;
  Buffer.contents buf
