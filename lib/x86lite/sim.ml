(* Cycle-counting simulator for X86-lite native code. Executes compiled
   instruction arrays against the same simulated memory, runtime and
   exception model as the LLVA interpreter, so the two can be compared
   byte-for-byte. Supports translate-on-demand through a pluggable code
   lookup, which is how the LLEE execution manager drives it. *)

open Llva
open X86

type trap_kind =
  | Division_by_zero
  | Overflow (* signed INT_MIN / -1 division or remainder (#DE class) *)
  | Memory_fault of int64
  | Privilege_violation

exception Trap of trap_kind
exception Unwound
exception Out_of_fuel

type flags =
  | Fnone
  | Fint of int64 * int64 * bool (* a, b (normalized), signed compare *)
  | Ffloat of float * float

type frame = {
  fr_cf : Compile.cfunc;
  fr_ret_pc : int;
  fr_except : int option;
  fr_bp : int64;
  fr_sp : int64;
}

type state = {
  cmod : Compile.cmodule;
  mem : Vmem.Memory.t;
  rt : Vmem.Runtime.t;
  regs : int64 array;
  fregs : float array;
  mutable flags : flags;
  mutable frames : frame list;
  mutable cur : Compile.cfunc;
  mutable pc : int;
  mutable cycles : int64;
  mutable icount : int64;
  mutable fuel : int; (* instruction budget; < 0 = unlimited *)
  mutable trap_handler : string option;
  mutable privileged : bool;
  redirects : (string, string) Hashtbl.t; (* SMC redirections *)
  (* pluggable translate-on-demand (LLEE): returns native code for a
     function name; default looks in the compiled module *)
  mutable lookup : state -> string -> Compile.cfunc option;
  mutable translations : int; (* how many lookups missed the module cache *)
}

let default_lookup st name = Hashtbl.find_opt st.cmod.Compile.funcs name

let create ?(fuel = -1) (cmod : Compile.cmodule) : state =
  let mem = cmod.Compile.image.Vmem.Image.mem in
  let dummy =
    { Compile.cf_name = "<none>"; code = [||]; nargs = 0; frame_slots = 0 }
  in
  {
    cmod;
    mem;
    rt = Vmem.Runtime.create mem;
    regs = Array.make 8 0L;
    fregs = Array.make 8 0.0;
    flags = Fnone;
    frames = [];
    cur = dummy;
    pc = 0;
    cycles = 0L;
    icount = 0L;
    fuel;
    trap_handler = None;
    privileged = false;
    redirects = Hashtbl.create 4;
    lookup = default_lookup;
    translations = 0;
  }

let output st = Vmem.Runtime.output st.rt

(* ---------- width/sign helpers ---------- *)

let ty_of_width w s =
  match (w, s) with
  | W8, true -> Types.Sbyte
  | W8, false -> Types.Ubyte
  | W16, true -> Types.Short
  | W16, false -> Types.Ushort
  | W32, true -> Types.Int
  | W32, false -> Types.Uint
  | W64, true -> Types.Long
  | W64, false -> Types.Ulong

let norm w s v = Ir.normalize_int (ty_of_width w s) v

(* ---------- operand access ---------- *)

let mem_addr st (m : mem) = Int64.add st.regs.(m.base) (Int64.of_int m.disp)

let read_op st = function
  | R r -> st.regs.(r)
  | I v -> v
  | M m -> Vmem.Memory.read_u64 st.mem (mem_addr st m)

let write_op st op v =
  match op with
  | R r -> st.regs.(r) <- v
  | M m -> Vmem.Memory.write_u64 st.mem (mem_addr st m) v
  | I _ -> invalid_arg "x86lite sim: write to immediate"

(* ---------- traps ---------- *)

exception Unwinding_internal

let rec deliver_trap st kind : unit =
  (match st.trap_handler with
  | Some hname -> (
      st.trap_handler <- None;
      match st.lookup st hname with
      | Some hcf ->
          let num =
            match kind with
            | Division_by_zero -> 0L
            | Overflow -> 0L (* x86 #DE covers both divide faults *)
            | Memory_fault _ -> 1L
            | Privilege_violation -> 2L
          in
          (try run_subcall st hcf [ num; 0L ] with Unwinding_internal -> ())
      | None -> ())
  | None -> ());
  raise (Trap kind)

(* Run a nested native call with integer arguments (used for the trap
   handler). Arguments are pushed per the calling convention. *)
and run_subcall st (cf : Compile.cfunc) (args : int64 list) =
  let n = List.length args in
  let saved_sp = st.regs.(sp) and saved_bp = st.regs.(bp) in
  let saved_frames = st.frames and saved_cur = st.cur and saved_pc = st.pc in
  st.regs.(sp) <- Int64.sub st.regs.(sp) (Int64.of_int (8 * n));
  List.iteri
    (fun k v ->
      Vmem.Memory.write_u64 st.mem
        (Int64.add st.regs.(sp) (Int64.of_int (8 * k)))
        v)
    args;
  (* simulated return-address push *)
  st.regs.(sp) <- Int64.sub st.regs.(sp) 8L;
  st.frames <- [];
  st.cur <- cf;
  st.pc <- 0;
  run_until_empty st;
  st.regs.(sp) <- saved_sp;
  st.regs.(bp) <- saved_bp;
  st.frames <- saved_frames;
  st.cur <- saved_cur;
  st.pc <- saved_pc

(* ---------- calls ---------- *)

and resolve_callee st (name : string) =
  let name =
    match Hashtbl.find_opt st.redirects name with Some r -> r | None -> name
  in
  match st.lookup st name with
  | Some cf -> `Native cf
  | None -> `External name

and addr_to_name st (addr : int64) =
  match Vmem.Image.func_at st.cmod.Compile.image addr with
  | Some f -> f.Ir.fname
  | None ->
      raise (Trap (Memory_fault addr))

(* read the k'th argument from the caller's argument area; at this point
   SP points at the simulated return address slot *)
and read_arg st k =
  Vmem.Memory.read_u64 st.mem
    (Int64.add st.regs.(sp) (Int64.of_int (8 + (8 * k))))

and external_call st name =
  (* runtime and intrinsic functions; args are on the stack *)
  if Llva.Intrinsics.is_intrinsic name then intrinsic_call st name
  else if Vmem.Runtime.is_known name then begin
    let sig_args =
      match name with
      | "malloc" | "print_int" | "print_long" | "print_char" | "print_str"
      | "free" | "exit" | "strlen" ->
          1
      | "print_float" -> 1
      | "print_nl" | "abort" -> 0
      | "memcpy" | "memset" -> 3
      | _ -> 0
    in
    let args =
      List.init sig_args (fun k ->
          let raw = read_arg st k in
          if name = "print_float" then Eval.F (Types.Double, Int64.float_of_bits raw)
          else Eval.I (Types.Long, raw))
    in
    match Vmem.Runtime.call st.rt name args with
    | Eval.I (_, v) -> st.regs.(ax) <- v
    | Eval.P a -> st.regs.(ax) <- a
    | Eval.B b -> st.regs.(ax) <- (if b then 1L else 0L)
    | Eval.F (_, f) -> st.fregs.(0) <- f
    | Eval.Undef _ -> ()
  end
  else invalid_arg ("x86lite sim: undefined external " ^ name)

and intrinsic_call st name =
  match name with
  | "llva.trap.register" ->
      let addr = read_arg st 0 in
      st.trap_handler <- Some (addr_to_name st addr)
  | "llva.smc.replace" ->
      let from_n = addr_to_name st (read_arg st 0) in
      let to_n = addr_to_name st (read_arg st 1) in
      Hashtbl.replace st.redirects from_n to_n
  | "llva.stack.depth" ->
      st.regs.(ax) <- Int64.of_int (List.length st.frames)
  | "llva.priv.set" -> st.privileged <- not (Int64.equal (read_arg st 0) 0L)
  | other when Llva.Intrinsics.is_privileged other ->
      if not st.privileged then begin
        deliver_trap st Privilege_violation;
        assert false
      end
  | _ -> invalid_arg ("x86lite sim: unknown intrinsic " ^ name)

(* ---------- the main step loop ---------- *)

and cc_holds st cc =
  match st.flags with
  | Fnone -> invalid_arg "x86lite sim: branch without flags"
  | Fint (a, b, _) -> (
      let sc = Int64.compare a b in
      let uc = Int64.unsigned_compare a b in
      match cc with
      | Eq -> sc = 0
      | Ne -> sc <> 0
      | Lt -> sc < 0
      | Gt -> sc > 0
      | Le -> sc <= 0
      | Ge -> sc >= 0
      | Ltu -> uc < 0
      | Gtu -> uc > 0
      | Leu -> uc <= 0
      | Geu -> uc >= 0)
  | Ffloat (a, b) ->
      (* IEEE-754 unordered: NaN makes every relation except Ne false *)
      if Float.is_nan a || Float.is_nan b then cc = Ne
      else (
        let c = Float.compare a b in
        match cc with
        | Eq -> c = 0
        | Ne -> c <> 0
        | Lt | Ltu -> c < 0
        | Gt | Gtu -> c > 0
        | Le | Leu -> c <= 0
        | Ge | Geu -> c >= 0)

and do_call st ~target ~except ~ret_pc =
  match target with
  | `Native cf ->
      st.frames <-
        {
          fr_cf = st.cur;
          fr_ret_pc = ret_pc;
          fr_except = except;
          fr_bp = st.regs.(bp);
          fr_sp = st.regs.(sp);
        }
        :: st.frames;
      if List.length st.frames > 50_000 then
        invalid_arg "x86lite sim: call stack overflow";
      (* simulated return-address push *)
      st.regs.(sp) <- Int64.sub st.regs.(sp) 8L;
      st.cur <- cf;
      st.pc <- 0
  | `External name ->
      (* externals execute "inline": SP unchanged around them except the
         simulated return-address push/pop *)
      st.regs.(sp) <- Int64.sub st.regs.(sp) 8L;
      external_call st name;
      st.regs.(sp) <- Int64.add st.regs.(sp) 8L;
      st.pc <- ret_pc

and step st =
  let i = st.cur.Compile.code.(st.pc) in
  st.icount <- Int64.add st.icount 1L;
  st.cycles <- Int64.add st.cycles (Int64.of_int (cycles_of i));
  if st.fuel >= 0 && Int64.to_int st.icount > st.fuel then raise Out_of_fuel;
  let next = st.pc + 1 in
  st.pc <- next;
  match i with
  | Mov (dst, src) -> write_op st dst (read_op st src)
  | Alu (op, w, s, dst, src) ->
      let ty = ty_of_width w s in
      let a = read_op st dst and b = read_op st src in
      let r =
        match op with
        | Add -> Int64.add a b
        | Sub -> Int64.sub a b
        | Imul -> Int64.mul a b
        | And -> Int64.logand a b
        | Or -> Int64.logor a b
        | Xor -> Int64.logxor a b
      in
      write_op st dst (Ir.normalize_int ty r)
  | Div (w, s, dst, src) | Rem (w, s, dst, src) -> (
      let ty = ty_of_width w s in
      let a = read_op st dst and b = read_op st src in
      let op = match i with Div _ -> Ir.Div | _ -> Ir.Rem in
      match Eval.int_binop op ty a b with
      | Eval.I (_, v) -> write_op st dst v
      | _ -> ()
      | exception Eval.Division_by_zero ->
          deliver_trap st Division_by_zero
      | exception Eval.Overflow -> deliver_trap st Overflow)
  | Shift (left, w, s, dst, src) ->
      let ty = ty_of_width w s in
      let a = read_op st dst and b = read_op st src in
      let op = if left then Ir.Shl else Ir.Shr in
      (match Eval.int_binop op ty a b with
      | Eval.I (_, v) -> write_op st dst v
      | _ -> ())
  | Ext (r, w, s) -> st.regs.(r) <- norm w s st.regs.(r)
  | Mload (r, m, w, s) -> (
      let addr = mem_addr st m in
      if Int64.equal addr 0L then deliver_trap st (Memory_fault 0L);
      match Vmem.Memory.read_uint st.mem addr (width_bytes w) with
      | raw -> st.regs.(r) <- norm w s raw
      | exception Vmem.Memory.Fault a -> deliver_trap st (Memory_fault a))
  | Mstore (m, r, w) -> (
      let addr = mem_addr st m in
      if Int64.equal addr 0L then deliver_trap st (Memory_fault 0L);
      match Vmem.Memory.write_uint st.mem addr (width_bytes w) st.regs.(r) with
      | () -> ()
      | exception Vmem.Memory.Fault a -> deliver_trap st (Memory_fault a))
  | Cmp (w, s, a, b) ->
      st.flags <- Fint (norm w s (read_op st a), norm w s (read_op st b), s)
  | Setcc (cc, r) -> st.regs.(r) <- (if cc_holds st cc then 1L else 0L)
  | Jcc (cc, l) -> if cc_holds st cc then st.pc <- l
  | Jmp l -> st.pc <- l
  | Lea (r, m) -> st.regs.(r) <- mem_addr st m
  | Push op ->
      st.regs.(sp) <- Int64.sub st.regs.(sp) 8L;
      Vmem.Memory.write_u64 st.mem st.regs.(sp) (read_op st op)
  | Pop r ->
      st.regs.(r) <- Vmem.Memory.read_u64 st.mem st.regs.(sp);
      st.regs.(sp) <- Int64.add st.regs.(sp) 8L
  | CallSym name -> do_call st ~target:(resolve_callee st name) ~except:None ~ret_pc:next
  | CallSymI (name, l) ->
      do_call st ~target:(resolve_callee st name) ~except:(Some l) ~ret_pc:next
  | CallInd op ->
      let name = addr_to_name st (read_op st op) in
      do_call st ~target:(resolve_callee st name) ~except:None ~ret_pc:next
  | CallIndI (op, l) ->
      let name = addr_to_name st (read_op st op) in
      do_call st ~target:(resolve_callee st name) ~except:(Some l) ~ret_pc:next
  | Ret -> (
      (* pop the simulated return address *)
      st.regs.(sp) <- Int64.add st.regs.(sp) 8L;
      match st.frames with
      | [] -> raise Exit (* top-level return: caught by run_until_empty *)
      | f :: rest ->
          st.frames <- rest;
          st.cur <- f.fr_cf;
          st.pc <- f.fr_ret_pc)
  | Unwind ->
      (* walk the frame stack to the nearest invoke handler *)
      let rec unwind frames =
        match frames with
        | [] -> raise Unwound
        | f :: rest -> (
            match f.fr_except with
            | Some handler ->
                st.frames <- rest;
                st.cur <- f.fr_cf;
                st.pc <- handler;
                st.regs.(bp) <- f.fr_bp;
                st.regs.(sp) <- f.fr_sp
            | None -> unwind rest)
      in
      unwind st.frames
  | AddSp n -> st.regs.(sp) <- Int64.add st.regs.(sp) (Int64.of_int n)
  | SubSpDyn (d, s) ->
      st.regs.(sp) <- Int64.sub st.regs.(sp) st.regs.(s);
      st.regs.(d) <- st.regs.(sp)
  | Fmov (a, b) -> st.fregs.(a) <- st.fregs.(b)
  | Fconst (f, v) -> st.fregs.(f) <- v
  | Falu (op, single, a, b) ->
      let x = st.fregs.(a) and y = st.fregs.(b) in
      let r =
        match op with
        | Fadd -> x +. y
        | Fsub -> x -. y
        | Fmul -> x *. y
        | Fdiv -> x /. y
        | Frem -> Float.rem x y
      in
      st.fregs.(a) <-
        (if single then Eval.round_float Types.Float r else r)
  | Fload (f, m, single) -> (
      let addr = mem_addr st m in
      if Int64.equal addr 0L then deliver_trap st (Memory_fault 0L);
      match
        if single then Vmem.Memory.read_uint st.mem addr 4
        else Vmem.Memory.read_u64 st.mem addr
      with
      | raw ->
          st.fregs.(f) <-
            (if single then Int32.float_of_bits (Int64.to_int32 raw)
             else Int64.float_of_bits raw)
      | exception Vmem.Memory.Fault a -> deliver_trap st (Memory_fault a))
  | Fstore (m, f, single) -> (
      let addr = mem_addr st m in
      if Int64.equal addr 0L then deliver_trap st (Memory_fault 0L);
      let v = st.fregs.(f) in
      match
        if single then
          Vmem.Memory.write_uint st.mem addr 4
            (Int64.of_int32 (Int32.bits_of_float v))
        else Vmem.Memory.write_u64 st.mem addr (Int64.bits_of_float v)
      with
      | () -> ()
      | exception Vmem.Memory.Fault a -> deliver_trap st (Memory_fault a))
  | Fcmp (a, b) -> st.flags <- Ffloat (st.fregs.(a), st.fregs.(b))
  | Cvtif (f, r, signed) ->
      let v = st.regs.(r) in
      st.fregs.(f) <-
        (if signed then Int64.to_float v
         else if Int64.compare v 0L >= 0 then Int64.to_float v
         else Int64.to_float v +. 18446744073709551616.0)
  | Cvtfi (r, f, w, s) ->
      let x = st.fregs.(f) in
      let x = if Float.is_nan x then 0.0 else x in
      st.regs.(r) <- norm w s (Int64.of_float x)
  | Fround f -> st.fregs.(f) <- Eval.round_float Types.Float st.fregs.(f)
  | Fpushret f -> st.fregs.(0) <- st.fregs.(f)
  | Trap msg -> invalid_arg ("x86lite sim: trap " ^ msg)

and run_until_empty st =
  try
    while true do
      step st
    done
  with Exit -> ()

(* ---------- entry points ---------- *)

let call_function st name (int_args : int64 list) : int64 =
  match resolve_callee st name with
  | `External _ -> invalid_arg ("x86lite sim: cannot start in external " ^ name)
  | `Native cf ->
      let n = List.length int_args in
      st.regs.(sp) <- Int64.sub st.regs.(sp) (Int64.of_int (8 * n));
      List.iteri
        (fun k v ->
          Vmem.Memory.write_u64 st.mem
            (Int64.add st.regs.(sp) (Int64.of_int (8 * k)))
            v)
        int_args;
      st.regs.(sp) <- Int64.sub st.regs.(sp) 8L;
      st.frames <- [];
      st.cur <- cf;
      st.pc <- 0;
      run_until_empty st;
      st.regs.(ax)

let run_main ?fuel (cmod : Compile.cmodule) =
  let st = create ?fuel:(Option.map (fun f -> f) fuel) cmod in
  st.regs.(sp) <- Vmem.Memory.stack_top;
  st.regs.(bp) <- Vmem.Memory.stack_top;
  let code =
    match call_function st "main" [] with
    | v -> Int64.to_int (Ir.normalize_int Types.Int v)
    | exception Vmem.Runtime.Exit_called c -> c
  in
  (code, st)
