(* X86-lite: a two-address CISC I-ISA standing in for Intel IA-32 in the
   paper's evaluation. 8 integer registers, 8 floating registers,
   register-memory operations with [base+disp] addressing, variable-length
   instruction encodings (1-10 bytes), condition codes.

   Values in integer registers are kept in the canonical normalized form
   of their defining LLVA type (see [Llva.Eval]); width-tagged operations
   renormalize after every computation, exactly as 8/16/32-bit operand
   sizes behave on a real CISC. *)

type reg = int (* 0=AX 1=CX 2=DX 3=BX 4=SP 5=BP 6=SI 7=DI *)
type freg = int (* F0 .. F7 *)

let ax = 0
let cx = 1
let dx = 2
let bx = 3
let sp = 4
let bp = 5
let si = 6
let di = 7

let reg_name = function
  | 0 -> "ax"
  | 1 -> "cx"
  | 2 -> "dx"
  | 3 -> "bx"
  | 4 -> "sp"
  | 5 -> "bp"
  | 6 -> "si"
  | 7 -> "di"
  | r -> Printf.sprintf "r?%d" r

(* Allocatable by a smarter allocator: BX, SI, DI (AX/CX/DX are scratch /
   return registers; SP/BP are the stack). The paper's X86 back-end uses
   the spill-everything allocator anyway. *)
let allocatable_int = [ 3; 6; 7 ]
let allocatable_float = [ 4; 5; 6; 7 ] (* F4..F7; F0..F3 scratch *)

type width = W8 | W16 | W32 | W64

let width_bytes = function W8 -> 1 | W16 -> 2 | W32 -> 4 | W64 -> 8

type mem = { base : reg; disp : int }

type operand = R of reg | I of int64 | M of mem

type alu = Add | Sub | Imul | And | Or | Xor

type cc = Eq | Ne | Lt | Gt | Le | Ge | Ltu | Gtu | Leu | Geu

type fop = Fadd | Fsub | Fmul | Fdiv | Frem

type instr =
  | Mov of operand * operand (* dst <- src; not mem,mem *)
  | Alu of alu * width * bool * operand * operand (* dst <- dst op src *)
  | Div of width * bool * operand * operand (* dst <- dst / src; traps on 0 *)
  | Rem of width * bool * operand * operand
  | Shift of bool * width * bool * operand * operand
    (* left?, width, signed, dst, count *)
  | Ext of reg * width * bool (* normalize reg to width, signed *)
  | Mload of reg * mem * width * bool (* sized load, sign/zero extends *)
  | Mstore of mem * reg * width (* sized store *)
  | Cmp of width * bool * operand * operand (* sets flags *)
  | Setcc of cc * reg
  | Jcc of cc * int (* block index *)
  | Jmp of int
  | Lea of reg * mem
  | Push of operand
  | Pop of reg
  | CallSym of string
  | CallInd of operand
  (* invoke forms carry the except-block index for the unwinder *)
  | CallSymI of string * int
  | CallIndI of operand * int
  | Ret
  | Unwind
  | AddSp of int (* stack adjustment (caller cleanup / frame) *)
  | SubSpDyn of reg * reg (* dst_reg <- (sp -= src_reg), for dynamic alloca *)
  (* floating point; float registers hold doubles, Fsingle rounds *)
  | Fmov of freg * freg
  | Fconst of freg * float
  | Falu of fop * bool * freg * freg (* single-precision?, dst op= src *)
  | Fload of freg * mem * bool (* single-precision? *)
  | Fstore of mem * freg * bool
  | Fcmp of freg * freg (* sets flags (signed cc apply) *)
  | Cvtif of freg * reg * bool (* int reg (signed?) -> float *)
  | Cvtfi of reg * freg * width * bool (* float -> int, normalized *)
  | Fround of freg (* round to single precision *)
  | Fpushret of freg (* move into F0 return reg: encoded as fmov *)
  | Trap of string (* unreachable marker *)

(* ---------- encoded size in bytes (for the Table 2 native-size column) *)

let imm_size (v : int64) =
  if Int64.compare v (-128L) >= 0 && Int64.compare v 127L <= 0 then 1
  else if Int64.compare v (-2147483648L) >= 0 && Int64.compare v 2147483647L <= 0
  then 4
  else 8

let disp_size d = if d >= -128 && d <= 127 then 1 else 4

let operand_extra = function
  | R _ -> 0
  | I v -> imm_size v
  | M m -> disp_size m.disp

let size_of = function
  | Mov (a, b) -> 2 + operand_extra a + operand_extra b
  | Alu (_, _, _, a, b) -> 2 + operand_extra a + operand_extra b
  | Div (_, _, a, b) | Rem (_, _, a, b) -> 3 + operand_extra a + operand_extra b
  | Shift (_, _, _, a, b) -> 2 + operand_extra a + operand_extra b
  | Ext (_, _, _) -> 3
  | Mload (_, m, _, _) -> 3 + disp_size m.disp
  | Mstore (m, _, _) -> 3 + disp_size m.disp
  | Cmp (_, _, a, b) -> 2 + operand_extra a + operand_extra b
  | Setcc _ -> 3
  | Jcc _ -> 2 (* short branches; long form would be 6 *)
  | Jmp _ -> 2
  | Lea (_, m) -> 2 + disp_size m.disp
  | Push a -> 1 + operand_extra a
  | Pop _ -> 1
  | CallSym _ | CallSymI _ -> 5
  | CallInd a | CallIndI (a, _) -> 2 + operand_extra a
  | Ret -> 1
  | Unwind -> 2
  | AddSp _ -> 4
  | SubSpDyn _ -> 3
  | Fmov _ -> 3
  | Fconst _ -> 10 (* load of a 64-bit literal *)
  | Falu _ -> 3
  | Fload (_, m, _) | Fstore (m, _, _) -> 3 + disp_size m.disp
  | Fcmp _ -> 3
  | Cvtif _ | Cvtfi _ -> 4
  | Fround _ -> 3
  | Fpushret _ -> 3
  | Trap _ -> 2

(* ---------- cycle model ----------

   Latency model used by the simulator, the bench suite, and the
   superoptimizer's search ranking (lib/superopt). Every constructor
   must carry an explicit cost — no catch-all default — so a new
   instruction cannot silently ride on a stale estimate; the test suite
   asserts a positive cost for one exemplar of every constructor.
   Memory operands add [mem_cost] for the address generation + access. *)

let mem_cost = function M _ -> 2 | _ -> 0

let cycles_of = function
  | Mov (a, b) -> 1 + mem_cost a + mem_cost b
  | Alu (Imul, _, _, a, b) -> 3 + mem_cost a + mem_cost b
  | Alu (_, _, _, a, b) -> 1 + mem_cost a + mem_cost b
  | Div (_, _, a, b) | Rem (_, _, a, b) -> 20 + mem_cost a + mem_cost b
  | Shift (_, _, _, a, b) -> 1 + mem_cost a + mem_cost b
  | Ext _ -> 1
  | Mload _ -> 3
  | Mstore _ -> 3
  | Cmp (_, _, a, b) -> 1 + mem_cost a + mem_cost b
  | Setcc _ -> 1
  | Jcc _ -> 2
  | Jmp _ -> 1
  | Lea _ -> 1
  | Push _ -> 2
  | Pop _ -> 2
  | CallSym _ | CallInd _ | CallSymI _ | CallIndI _ -> 4
  | Ret -> 3
  | Unwind -> 4
  | AddSp _ -> 1
  | SubSpDyn _ -> 2
  | Fmov _ -> 1
  | Fconst _ -> 2
  | Falu (Fdiv, _, _, _) -> 15
  (* Frem used to hide under the generic 3-cycle arm; it is a library
     call on real hardware and costs at least a divide. *)
  | Falu (Frem, _, _, _) -> 20
  | Falu ((Fadd | Fsub | Fmul), _, _, _) -> 3
  | Fload _ | Fstore _ -> 2
  | Fcmp _ -> 2
  | Cvtif _ | Cvtfi _ -> 4
  | Fround _ -> 2
  | Fpushret _ -> 1
  | Trap _ -> 1

(* ---------- printing (debugging / disassembly) ---------- *)

let operand_str = function
  | R r -> "%" ^ reg_name r
  | I v -> Printf.sprintf "$%Ld" v
  | M m -> Printf.sprintf "%d(%%%s)" m.disp (reg_name m.base)

let cc_str = function
  | Eq -> "e"
  | Ne -> "ne"
  | Lt -> "l"
  | Gt -> "g"
  | Le -> "le"
  | Ge -> "ge"
  | Ltu -> "b"
  | Gtu -> "a"
  | Leu -> "be"
  | Geu -> "ae"

let alu_str = function
  | Add -> "add"
  | Sub -> "sub"
  | Imul -> "imul"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"

let width_suffix = function W8 -> "b" | W16 -> "w" | W32 -> "l" | W64 -> "q"

let to_string = function
  | Mov (a, b) -> Printf.sprintf "mov %s, %s" (operand_str a) (operand_str b)
  | Alu (op, w, _, a, b) ->
      Printf.sprintf "%s%s %s, %s" (alu_str op) (width_suffix w)
        (operand_str a) (operand_str b)
  | Div (w, s, a, b) ->
      Printf.sprintf "%sdiv%s %s, %s"
        (if s then "i" else "")
        (width_suffix w) (operand_str a) (operand_str b)
  | Rem (w, s, a, b) ->
      Printf.sprintf "%srem%s %s, %s"
        (if s then "i" else "")
        (width_suffix w) (operand_str a) (operand_str b)
  | Shift (left, w, s, a, b) ->
      Printf.sprintf "%s%s %s, %s"
        (if left then "shl" else if s then "sar" else "shr")
        (width_suffix w) (operand_str a) (operand_str b)
  | Ext (r, w, s) ->
      Printf.sprintf "%s%s %%%s"
        (if s then "movsx" else "movzx")
        (width_suffix w) (reg_name r)
  | Mload (r, m, w, s) ->
      Printf.sprintf "mov%s%s %%%s, %d(%%%s)"
        (if s then "sx" else "zx")
        (width_suffix w) (reg_name r) m.disp (reg_name m.base)
  | Mstore (m, r, w) ->
      Printf.sprintf "mov%s %d(%%%s), %%%s" (width_suffix w) m.disp
        (reg_name m.base) (reg_name r)
  | Cmp (w, _, a, b) ->
      Printf.sprintf "cmp%s %s, %s" (width_suffix w) (operand_str a)
        (operand_str b)
  | Setcc (cc, r) -> Printf.sprintf "set%s %%%s" (cc_str cc) (reg_name r)
  | Jcc (cc, l) -> Printf.sprintf "j%s .L%d" (cc_str cc) l
  | Jmp l -> Printf.sprintf "jmp .L%d" l
  | Lea (r, m) ->
      Printf.sprintf "lea %%%s, %d(%%%s)" (reg_name r) m.disp (reg_name m.base)
  | Push a -> "push " ^ operand_str a
  | Pop r -> "pop %" ^ reg_name r
  | CallSym s -> "call " ^ s
  | CallInd a -> "call *" ^ operand_str a
  | CallSymI (s, l) -> Printf.sprintf "call %s (except .L%d)" s l
  | CallIndI (a, l) -> Printf.sprintf "call *%s (except .L%d)" (operand_str a) l
  | Ret -> "ret"
  | Unwind -> "unwind"
  | AddSp n -> Printf.sprintf "add %%sp, $%d" n
  | SubSpDyn (d, s) ->
      Printf.sprintf "subspdyn %%%s, %%%s" (reg_name d) (reg_name s)
  | Fmov (a, b) -> Printf.sprintf "fmov %%f%d, %%f%d" a b
  | Fconst (f, v) -> Printf.sprintf "fconst %%f%d, %g" f v
  | Falu (op, single, a, b) ->
      Printf.sprintf "f%s%s %%f%d, %%f%d"
        (match op with
        | Fadd -> "add"
        | Fsub -> "sub"
        | Fmul -> "mul"
        | Fdiv -> "div"
        | Frem -> "rem")
        (if single then "s" else "d")
        a b
  | Fload (f, m, single) ->
      Printf.sprintf "fld%s %%f%d, %d(%%%s)"
        (if single then "s" else "d")
        f m.disp (reg_name m.base)
  | Fstore (m, f, single) ->
      Printf.sprintf "fst%s %d(%%%s), %%f%d"
        (if single then "s" else "d")
        m.disp (reg_name m.base) f
  | Fcmp (a, b) -> Printf.sprintf "fcmp %%f%d, %%f%d" a b
  | Cvtif (f, r, _) -> Printf.sprintf "cvtif %%f%d, %%%s" f (reg_name r)
  | Cvtfi (r, f, _, _) -> Printf.sprintf "cvtfi %%%s, %%f%d" (reg_name r) f
  | Fround f -> Printf.sprintf "frnds %%f%d" f
  | Fpushret f -> Printf.sprintf "fret %%f%d" f
  | Trap s -> "trap " ^ s

let width_of_type target ty =
  match Llva.Types.scalar_bytes target ty with
  | 1 -> W8
  | 2 -> W16
  | 4 -> W32
  | 8 -> W64
  | _ -> W64
