(* Chaos suite: run every workload of the paper's Table 2 under injected
   storage faults and assert that LLEE contains all of them.

   Scenario 1 (read chaos): a fully-populated offline cache whose reads
   are corrupted in flight. Every damaged serve must be detected by the
   entry checksum and quarantined — exactly one quarantine per damaged
   serve — and every quarantined entry the launch actually needs must be
   retranslated and repaired (the whole-module entry is the one entry the
   run path never rewrites). Program output and exit must be identical to
   the fault-free baseline.

   Scenario 2 (write chaos): a cold launch whose storage drops, tears, or
   transiently refuses writes (with bounded retry absorbing the transient
   class). The launch itself must be correct — the cache is an
   optimization, never a correctness dependency — and the damage it left
   behind must self-heal: one warm launch quarantines and repairs the
   torn entries, and the launch after that runs entirely from cache.

   Any OCaml exception escaping an engine entry point crashes this
   harness, which is precisely the regression it guards against. The
   fault seed is fixed for reproducibility; override with CHAOS_SEED. *)

module Storage = Llee.Storage

let seed =
  match Sys.getenv_opt "CHAOS_SEED" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 0xC0FFEE)
  | None -> 0xC0FFEE

let failures = ref 0

let check name ok =
  if not ok then begin
    incr failures;
    Printf.printf "  FAIL %s\n%!" name
  end

let check_eq name pp a b =
  if a <> b then begin
    incr failures;
    Printf.printf "  FAIL %s: %s <> %s\n%!" name (pp a) (pp b)
  end

let outcome_pp (o, out) =
  Printf.sprintf "%s (%d output bytes)" (Llee.Outcome.to_string o)
    (String.length out)

(* totals across the whole campaign, for the summary line *)
let t_quarantined = ref 0
let t_repaired = ref 0
let t_damaged = ref 0
let t_torn = ref 0
let t_failed_writes = ref 0
let t_transient = ref 0
let t_retried = ref 0

let with_storage eng storage = { (Llee.fresh_run eng) with Llee.storage }

let run_workload (w : Workloads.workload) =
  Printf.printf "%-17s %!" w.Workloads.name;
  let m = Workloads.compile_optimized ~level:1 w in
  let bytes = Llva.Encode.encode m in

  (* fault-free baseline *)
  let s0 = Storage.in_memory () in
  let base = Llee.load ~storage:s0 ~target:Llee.X86 bytes in
  let expected = Llee.run base in
  check "baseline exits normally"
    (match expected with Llee.Outcome.Exit _, _ -> true | _ -> false);

  (* ---- scenario 1: read chaos over a populated offline cache ---- *)
  let s1 = Storage.in_memory () in
  let eng1 = Llee.load ~storage:s1 ~target:Llee.X86 bytes in
  Llee.translate_offline ~domains:1 eng1;
  let faulty_cfg =
    {
      Storage.fault_seed = seed;
      read_corrupt = 0.75;
      write_fail = 0.0;
      write_torn = 0.0;
      transient = 0.0;
    }
  in
  let fs1, fc1 = Storage.faulty faulty_cfg s1 in
  let chaos1 = with_storage eng1 fs1 in
  let r1 = Llee.run chaos1 in
  check_eq "read chaos: output identical to baseline" outcome_pp r1 expected;
  (* exact containment accounting: one quarantine per damaged serve, one
     repair per damaged serve the run path rewrites (every entry except
     the whole-module one, which only offline translation writes) *)
  check_eq "read chaos: quarantined == damaged serves" string_of_int
    chaos1.Llee.stats.Llee.cache_quarantined fc1.Storage.damaged_serves;
  let module_damage =
    Option.value ~default:0
      (Hashtbl.find_opt fc1.Storage.damaged_names (Llee.module_entry_name eng1))
  in
  check_eq "read chaos: repaired == damaged - module entry" string_of_int
    chaos1.Llee.stats.Llee.cache_repaired
    (fc1.Storage.damaged_serves - module_damage);
  t_quarantined := !t_quarantined + chaos1.Llee.stats.Llee.cache_quarantined;
  t_repaired := !t_repaired + chaos1.Llee.stats.Llee.cache_repaired;
  t_damaged := !t_damaged + fc1.Storage.damaged_serves;
  (* the repairs landed: a fault-free launch over the same storage is
     clean — nothing quarantined, nothing retranslated *)
  let healed1 = with_storage eng1 s1 in
  let h1 = Llee.run healed1 in
  check_eq "read chaos: healed launch correct" outcome_pp h1 expected;
  check "read chaos: healed launch quarantines nothing"
    (healed1.Llee.stats.Llee.cache_quarantined = 0);
  check "read chaos: healed launch retranslates nothing"
    (healed1.Llee.stats.Llee.translations = 0);

  (* ---- scenario 2: write chaos on a cold launch, bounded retry ---- *)
  let s2u = Storage.in_memory () in
  let fs2, fc2 =
    Storage.faulty
      {
        Storage.fault_seed = seed + 1;
        read_corrupt = 0.0;
        write_fail = 0.15;
        write_torn = 0.25;
        transient = 0.15;
      }
      s2u
  in
  let s2 = Storage.with_retry ~attempts:6 ~backoff:0.0 fs2 in
  let eng2 = Llee.load ~storage:s2 ~target:Llee.X86 bytes in
  let r2 = Llee.run eng2 in
  check_eq "write chaos: cold launch correct despite faults" outcome_pp r2
    expected;
  t_torn := !t_torn + fc2.Storage.torn_writes;
  t_failed_writes := !t_failed_writes + fc2.Storage.failed_writes;
  t_transient := !t_transient + fc2.Storage.transient_faults;
  t_retried := !t_retried + s2.Storage.counters.Storage.retried;
  (* whatever the write faults left behind self-heals: the first clean
     warm launch quarantines every torn entry it touches and repairs it,
     the second runs entirely from cache *)
  let warm2 = with_storage eng2 s2u in
  let rw = Llee.run warm2 in
  check_eq "write chaos: warm launch correct over damaged cache" outcome_pp rw
    expected;
  check "write chaos: torn entries were quarantined, not trusted"
    (warm2.Llee.stats.Llee.cache_quarantined
     >= warm2.Llee.stats.Llee.cache_repaired);
  t_quarantined := !t_quarantined + warm2.Llee.stats.Llee.cache_quarantined;
  t_repaired := !t_repaired + warm2.Llee.stats.Llee.cache_repaired;
  let warm3 = with_storage eng2 s2u in
  let rw3 = Llee.run warm3 in
  check_eq "write chaos: second warm launch correct" outcome_pp rw3 expected;
  check "write chaos: cache fully healed"
    (warm3.Llee.stats.Llee.cache_quarantined = 0
    && warm3.Llee.stats.Llee.translations = 0);
  Printf.printf "ok (quar %d+%d, rep %d+%d, torn %d, failed %d, transient %d)\n%!"
    chaos1.Llee.stats.Llee.cache_quarantined
    warm2.Llee.stats.Llee.cache_quarantined
    chaos1.Llee.stats.Llee.cache_repaired warm2.Llee.stats.Llee.cache_repaired
    fc2.Storage.torn_writes fc2.Storage.failed_writes
    fc2.Storage.transient_faults

(* ---- scenario 3: the superoptimized peephole table under chaos ----
   The [#peep#] rewrite-table entry rides the same checksummed frame as
   every other cache entry, so a damaged serve must be quarantined, the
   table re-searched exactly once (deterministically — same table, same
   fingerprint, so the populated native entries stay reachable), and the
   fresh write-back counted as a repair. *)
let run_peep_chaos () =
  Printf.printf "%-17s %!" "peephole-chaos";
  let w = Option.get (Workloads.find "ptrdist-anagram") in
  let m = Workloads.compile_optimized ~level:1 w in
  let bytes = Llva.Encode.encode m in
  (* fault-free peephole baseline; behavior must match the pass-off run *)
  let s0 = Storage.in_memory () in
  let base = Llee.load ~storage:s0 ~peephole:true ~target:Llee.X86 bytes in
  let expected = Llee.run base in
  check "peephole baseline exits normally"
    (match expected with Llee.Outcome.Exit _, _ -> true | _ -> false);
  let plain = Llee.load ~target:Llee.X86 bytes in
  check_eq "peephole: behavior identical to pass-off" outcome_pp
    (Llee.run plain) expected;
  (* offline-populated cache (native entries + #peep# + #lint#), reads
     corrupted in flight *)
  let s1 = Storage.in_memory () in
  let eng1 = Llee.load ~storage:s1 ~peephole:true ~target:Llee.X86 bytes in
  Llee.translate_offline ~domains:1 eng1;
  let fs1, fc1 =
    Storage.faulty
      {
        Storage.fault_seed = seed + 2;
        read_corrupt = 0.75;
        write_fail = 0.0;
        write_torn = 0.0;
        transient = 0.0;
      }
      s1
  in
  let chaos = with_storage eng1 fs1 in
  let r1 = Llee.run chaos in
  check_eq "peep chaos: output identical to baseline" outcome_pp r1 expected;
  check_eq "peep chaos: quarantined == damaged serves" string_of_int
    chaos.Llee.stats.Llee.cache_quarantined fc1.Storage.damaged_serves;
  let module_damage =
    Option.value ~default:0
      (Hashtbl.find_opt fc1.Storage.damaged_names (Llee.module_entry_name eng1))
  in
  (* the run path rewrites every quarantined entry it needs — the
     re-searched #peep# table included — except the whole-module one *)
  check_eq "peep chaos: repaired == damaged - module entry" string_of_int
    chaos.Llee.stats.Llee.cache_repaired
    (fc1.Storage.damaged_serves - module_damage);
  let peep_damage =
    Option.value ~default:0
      (Hashtbl.find_opt fc1.Storage.damaged_names (Llee.peep_entry_name eng1))
  in
  check "peep chaos: damaged table re-searched, intact table loaded"
    (if peep_damage > 0 then
       chaos.Llee.stats.Llee.peep_searches = 1
       && chaos.Llee.stats.Llee.peep_table_loads = 0
     else
       chaos.Llee.stats.Llee.peep_searches = 0
       && chaos.Llee.stats.Llee.peep_table_loads = 1);
  t_quarantined := !t_quarantined + chaos.Llee.stats.Llee.cache_quarantined;
  t_repaired := !t_repaired + chaos.Llee.stats.Llee.cache_repaired;
  t_damaged := !t_damaged + fc1.Storage.damaged_serves;
  (* after the repairs: a clean launch loads the table, searches nothing,
     translates nothing *)
  let healed = with_storage eng1 s1 in
  let h = Llee.run healed in
  check_eq "peep chaos: healed launch correct" outcome_pp h expected;
  check "peep chaos: healed launch loads the table"
    (healed.Llee.stats.Llee.peep_table_loads = 1
    && healed.Llee.stats.Llee.peep_searches = 0
    && healed.Llee.stats.Llee.cache_quarantined = 0
    && healed.Llee.stats.Llee.translations = 0);
  Printf.printf "ok (quar %d, rep %d, peep damage %d)\n%!"
    chaos.Llee.stats.Llee.cache_quarantined
    chaos.Llee.stats.Llee.cache_repaired peep_damage

(* ---- scenario 4: a damaged per-module [#lint#] verdict entry ----
   The recorded verdict rides the same checksummed frame as native code.
   Flip one payload byte and the next launch must quarantine the entry,
   re-run llva-lint exactly once, and write the repaired verdict back —
   while every native entry is still served from cache (zero
   retranslations). The launch after that reuses the repaired verdict. *)
let run_lint_chaos () =
  Printf.printf "%-17s %!" "lint-chaos";
  let w = Option.get (Workloads.find "ptrdist-anagram") in
  let m = Workloads.compile_optimized ~level:1 w in
  let bytes = Llva.Encode.encode m in
  let s = Storage.in_memory () in
  let eng = Llee.load ~storage:s ~target:Llee.X86 bytes in
  Llee.translate_offline ~domains:1 eng;
  let expected = Llee.run (with_storage eng s) in
  check "lint chaos: baseline exits normally"
    (match expected with Llee.Outcome.Exit _, _ -> true | _ -> false);
  let lname = Llee.lint_entry_name eng in
  (match s.Storage.read lname with
  | None -> check "lint chaos: verdict entry recorded offline" false
  | Some e ->
      let d = Bytes.of_string e.Storage.data in
      let k = Bytes.length d - 1 in
      Bytes.set d k (Char.chr (Char.code (Bytes.get d k) lxor 0xff));
      s.Storage.write lname (Bytes.to_string d));
  let warm = with_storage eng s in
  let r = Llee.run warm in
  check_eq "lint chaos: launch correct over damaged verdict" outcome_pp r
    expected;
  check "lint chaos: damaged verdict quarantined, re-linted exactly once"
    (warm.Llee.stats.Llee.cache_quarantined = 1
    && warm.Llee.stats.Llee.cache_repaired = 1
    && warm.Llee.stats.Llee.lint_runs = 1
    && warm.Llee.stats.Llee.lint_skipped = 0);
  check "lint chaos: native entries still served from cache"
    (warm.Llee.stats.Llee.translations = 0
    && warm.Llee.stats.Llee.cache_hits > 0);
  t_quarantined := !t_quarantined + warm.Llee.stats.Llee.cache_quarantined;
  t_repaired := !t_repaired + warm.Llee.stats.Llee.cache_repaired;
  t_damaged := !t_damaged + 1;
  let healed = with_storage eng s in
  let h = Llee.run healed in
  check_eq "lint chaos: healed launch correct" outcome_pp h expected;
  check "lint chaos: healed launch reuses the repaired verdict"
    (healed.Llee.stats.Llee.lint_runs = 0
    && healed.Llee.stats.Llee.lint_skipped = 1
    && healed.Llee.stats.Llee.cache_quarantined = 0
    && healed.Llee.stats.Llee.translations = 0);
  Printf.printf "ok (re-lints %d, quar %d, rep %d)\n%!"
    warm.Llee.stats.Llee.lint_runs warm.Llee.stats.Llee.cache_quarantined
    warm.Llee.stats.Llee.cache_repaired

(* ---- scenario 6: a damaged per-module [#tv#] certification entry ----
   The lockstep-certification verdict rides the same checksummed frame as
   native code and lint verdicts. Flip one payload byte and the next
   [Llee.certify] must quarantine the entry, re-run the lockstep checker
   exactly once, and write the repaired verdict back; the launch after
   that reuses it without recertifying. *)
let run_tv_chaos () =
  Printf.printf "%-17s %!" "tv-chaos";
  let w = Option.get (Workloads.find "ptrdist-anagram") in
  let m = Workloads.compile_optimized ~level:1 w in
  let bytes = Llva.Encode.encode m in
  let s = Storage.in_memory () in
  let eng = Llee.load ~storage:s ~target:Llee.X86 bytes in
  let v0 = Llee.certify eng in
  check "tv chaos: baseline certifies clean" (Llee.Tv.clean v0);
  check "tv chaos: baseline computed the verdict"
    (eng.Llee.stats.Llee.tv_runs = 1 && eng.Llee.stats.Llee.tv_skipped = 0);
  let tname = Llee.tv_entry_name eng in
  (match s.Storage.read tname with
  | None -> check "tv chaos: verdict entry recorded" false
  | Some e ->
      let d = Bytes.of_string e.Storage.data in
      let k = Bytes.length d - 1 in
      Bytes.set d k (Char.chr (Char.code (Bytes.get d k) lxor 0xff));
      s.Storage.write tname (Bytes.to_string d));
  let warm = with_storage eng s in
  let v1 = Llee.certify warm in
  check "tv chaos: recertified verdict clean" (Llee.Tv.clean v1);
  check "tv chaos: damaged verdict quarantined, recertified exactly once"
    (warm.Llee.stats.Llee.cache_quarantined = 1
    && warm.Llee.stats.Llee.cache_repaired = 1
    && warm.Llee.stats.Llee.tv_runs = 1
    && warm.Llee.stats.Llee.tv_skipped = 0);
  t_quarantined := !t_quarantined + warm.Llee.stats.Llee.cache_quarantined;
  t_repaired := !t_repaired + warm.Llee.stats.Llee.cache_repaired;
  t_damaged := !t_damaged + 1;
  let healed = with_storage eng s in
  let v2 = Llee.certify healed in
  check "tv chaos: healed launch reuses the repaired verdict"
    (healed.Llee.stats.Llee.tv_runs = 0
    && healed.Llee.stats.Llee.tv_skipped = 1
    && healed.Llee.stats.Llee.cache_quarantined = 0);
  check "tv chaos: repaired verdict identical" (v2 = v1);
  Printf.printf "ok (recertifications %d, quar %d, rep %d)\n%!"
    warm.Llee.stats.Llee.tv_runs warm.Llee.stats.Llee.cache_quarantined
    warm.Llee.stats.Llee.cache_repaired

(* ---- scenario 5: kill -9 mid-cache-write, on a real process ----
   Every other scenario injects faults through the storage API; this one
   makes the failure real. A child llva-run populates an on-disk cache
   with LLVA_CHAOS_SLOW_WRITE_US set, which turns its writes into slow,
   non-atomic chunked streams into the final file — then SIGKILL lands
   the moment a native entry grows past a threshold, guaranteeing the
   torn state the atomic write path can never produce. Post-mortem:

   - the cache really holds a damaged frame (classified off the bytes);
   - a clean relaunch self-heals (exit 0, torn entry quarantined and
     rewritten under its original name);
   - --cache-doctor reports the quarantined entry and classifies the
     damage as a checksum mismatch;
   - a further warm launch is byte-identical on stdout to the healing
     one (the repair really landed). *)

let rm_rf dir =
  let rec rm p =
    match Unix.lstat p with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
        Array.iter (fun f -> rm (Filename.concat p f)) (Sys.readdir p);
        Unix.rmdir p
    | _ -> Sys.remove p
    | exception Unix.Unix_error _ -> ()
  in
  rm dir

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A module bulky enough that each per-function native cache entry takes
   many write chunks: three ~600-instruction chains plus a main that
   consumes their results (the lint gate must stay clean, or nothing
   would be cached at all). *)
let bulky_program () =
  let buf = Buffer.create (1 lsl 16) in
  for j = 0 to 2 do
    Buffer.add_string buf (Printf.sprintf "int %%f%d(int %%x) {\nentry:\n" j);
    for k = 0 to 599 do
      Buffer.add_string buf
        (Printf.sprintf "  %%a%d = add int %s, %d\n" k
           (if k = 0 then "%x" else Printf.sprintf "%%a%d" (k - 1))
           ((((j + 1) * k) mod 7) + 1))
    done;
    Buffer.add_string buf "  ret int %a599\n}\n\n"
  done;
  Buffer.add_string buf
    "int %main() {\nentry:\n  %r1 = call int %f0(int 1)\n  %r2 = call int \
     %f1(int %r1)\n  %r3 = call int %f2(int %r2)\n  %z = sub int %r3, %r3\n  \
     ret int %z\n}\n";
  Buffer.contents buf

(* Spawn [llva_run args], stdout captured to a file, and return the pid.
   [slow_us > 0] sets the chaos write knob in the child's environment. *)
let spawn_llva_run exe ~slow_us ~out args =
  let env =
    let base =
      Array.to_list (Unix.environment ())
      |> List.filter (fun kv ->
             not (String.length kv >= 24
                 && String.sub kv 0 24 = "LLVA_CHAOS_SLOW_WRITE_US"))
    in
    Array.of_list
      (if slow_us > 0 then
         Printf.sprintf "LLVA_CHAOS_SLOW_WRITE_US=%d" slow_us :: base
       else base)
  in
  let fd = Unix.openfile out [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.create_process_env exe
        (Array.of_list (exe :: args))
        env Unix.stdin fd Unix.stderr)

let run_kill9_chaos exe =
  Printf.printf "%-17s %!" "kill9-chaos";
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "llva-kill9-%d" (Unix.getpid ()))
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let input = Filename.concat dir "bulky.ll" in
      let oc = open_out input in
      output_string oc (bulky_program ());
      close_out oc;
      let cache = Filename.concat dir "cache" in
      let out n = Filename.concat dir n in
      let args = [ input; "--engine"; "llee-x86"; "--cache"; cache ] in
      (* victim launch: slow non-atomic writes, killed mid-entry *)
      let pid = spawn_llva_run exe ~slow_us:5000 ~out:(out "victim.out") args in
      let big_entry () =
        match Sys.readdir cache with
        | exception Sys_error _ -> false
        | files ->
            Array.exists
              (fun f ->
                (not (Filename.check_suffix f ".tmp"))
                &&
                match Unix.stat (Filename.concat cache f) with
                | { Unix.st_kind = Unix.S_REG; st_size; _ } -> st_size >= 4096
                | _ -> false
                | exception Unix.Unix_error _ -> false)
              files
      in
      let deadline = Unix.gettimeofday () +. 30.0 in
      while (not (big_entry ())) && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.001
      done;
      check "kill9: a native entry started growing on disk" (big_entry ());
      Unix.kill pid Sys.sigkill;
      (match Unix.waitpid [] pid with
      | _, Unix.WSIGNALED s -> check "kill9: child died of SIGKILL" (s = Sys.sigkill)
      | _, _ -> check "kill9: child died of SIGKILL" false);
      (* the wreckage is real: at least one on-disk entry must fail its
         frame check (torn mid-write), classified straight off the bytes *)
      let damaged =
        Sys.readdir cache |> Array.to_list
        |> List.filter (fun f -> not (Filename.check_suffix f ".tmp"))
        |> List.filter (fun f ->
               match Llee.classify_frame (read_file (Filename.concat cache f)) with
               | s ->
                   String.length s >= 3
                   && (String.sub s 0 3 = "bad"
                      || String.sub s 0 8 = "checksum")
               | exception Sys_error _ -> false)
      in
      check "kill9: the kill left a torn entry behind" (damaged <> []);
      t_torn := !t_torn + List.length damaged;
      (* self-heal: a clean relaunch must succeed and repair in place *)
      let heal = spawn_llva_run exe ~slow_us:0 ~out:(out "heal.out") args in
      (match Unix.waitpid [] heal with
      | _, Unix.WEXITED 0 -> ()
      | _, _ -> check "kill9: healing relaunch exits 0" false);
      let quarantined =
        Sys.readdir cache |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".quarantined")
      in
      check "kill9: torn entry quarantined, not trusted" (quarantined <> []);
      t_quarantined := !t_quarantined + List.length quarantined;
      t_repaired := !t_repaired + List.length quarantined;
      (* the doctor classifies the post-mortem *)
      let doc =
        spawn_llva_run exe ~slow_us:0 ~out:(out "doctor.out")
          (args @ [ "--cache-doctor" ])
      in
      (match Unix.waitpid [] doc with
      | _, Unix.WEXITED 0 -> ()
      | _, _ -> check "kill9: cache doctor exits 0" false);
      let report = read_file (out "doctor.out") in
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        m = 0 || go 0
      in
      check "kill9: doctor reports the quarantined entry"
        (contains report "quarantined entr");
      check "kill9: doctor classifies the torn frame"
        (contains report "checksum mismatch");
      (* the repair landed: one more launch, byte-identical stdout *)
      let warm = spawn_llva_run exe ~slow_us:0 ~out:(out "warm.out") args in
      (match Unix.waitpid [] warm with
      | _, Unix.WEXITED 0 -> ()
      | _, _ -> check "kill9: warm relaunch exits 0" false);
      check "kill9: warm stdout identical to healing stdout"
        (read_file (out "warm.out") = read_file (out "heal.out"));
      Printf.printf "ok (torn %d, quarantined %d)\n%!" (List.length damaged)
        (List.length quarantined))

let () =
  Printf.printf "chaos campaign: %d workloads, fault seed %#x\n%!"
    (List.length Workloads.all) seed;
  List.iter run_workload Workloads.all;
  run_peep_chaos ();
  run_lint_chaos ();
  run_tv_chaos ();
  (if Array.length Sys.argv > 1 then run_kill9_chaos Sys.argv.(1)
   else Printf.printf "kill9-chaos        skipped (no llva-run path given)\n%!");
  Printf.printf
    "campaign totals: %d damaged serves, %d quarantined, %d repaired, %d torn \
     writes, %d failed writes, %d transient faults (%d retried)\n"
    !t_damaged !t_quarantined !t_repaired !t_torn !t_failed_writes !t_transient
    !t_retried;
  if !failures > 0 then begin
    Printf.printf "chaos campaign FAILED: %d assertion(s)\n" !failures;
    exit 1
  end
  else Printf.printf "chaos campaign passed\n"
