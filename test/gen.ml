(* Shared test helpers: random well-typed program generation and
   execution shorthands used by several suites. *)

open Llva

let parse src =
  let m = Resolve.parse_module src in
  (match Verify.verify_module m with
  | [] -> ()
  | errs -> Alcotest.failf "verify: %s" (String.concat "; " errs));
  m

let run_interp ?(fuel = 2_000_000) m =
  let st = Interp.create ~fuel m in
  let code = Interp.run_main st in
  (code, Interp.output st)

(* deep copy via object code *)
let clone m = Decode.decode (Encode.encode m)

(* Build a random program with arithmetic, a diamond, and a bounded loop.
   Inputs come from globals (opaque to SCCP) so not everything folds. *)
let random_program rand : Ir.modl =
  let m = Ir.mk_module ~name:"diff" () in
  let g1 =
    Ir.mk_global ~name:"in1" ~ty:Types.Int
      ~init:
        {
          Ir.cty = Types.Int;
          ckind = Ir.Cint (Int64.of_int (Random.State.int rand 100));
        }
      ()
  in
  let g2 =
    Ir.mk_global ~name:"in2" ~ty:Types.Int
      ~init:
        {
          Ir.cty = Types.Int;
          ckind = Ir.Cint (Int64.of_int (1 + Random.State.int rand 50));
        }
      ()
  in
  Ir.add_global m g1;
  Ir.add_global m g2;
  let f = Ir.mk_func ~name:"main" ~return:Types.Int ~params:[] () in
  Ir.add_func m f;
  let entry = Ir.mk_block ~name:"entry" () in
  let header = Ir.mk_block ~name:"header" () in
  let bthen = Ir.mk_block ~name:"bthen" () in
  let belse = Ir.mk_block ~name:"belse" () in
  let latch = Ir.mk_block ~name:"latch" () in
  let exit = Ir.mk_block ~name:"exit" () in
  List.iter (Ir.append_block f) [ entry; header; bthen; belse; latch; exit ];
  let bld = Builder.create m in
  Builder.position_at_end entry bld;
  let v1 = Builder.load bld (Ir.Vglobal g1) in
  let v2 = Builder.load bld (Ir.Vglobal g2) in
  let pool = ref [ v1; v2; Ir.const_int Types.Int 3L ] in
  let pick () = List.nth !pool (Random.State.int rand (List.length !pool)) in
  let random_arith n =
    for _ = 1 to n do
      let ops = [| Ir.Add; Ir.Sub; Ir.Mul; Ir.And; Ir.Or; Ir.Xor |] in
      let op = ops.(Random.State.int rand (Array.length ops)) in
      pool := Builder.binop bld op (pick ()) (pick ()) :: !pool
    done
  in
  random_arith (2 + Random.State.int rand 6);
  let seed_val = pick () in
  Builder.br bld header;
  Builder.position_at_end header bld;
  let i_phi = Builder.phi_at_front bld Types.Int [] in
  let acc_phi = Builder.phi_at_front bld Types.Int [] in
  let cmp =
    Builder.setcc bld Ir.Lt i_phi
      (Ir.const_int Types.Int (Int64.of_int (1 + Random.State.int rand 8)))
  in
  Builder.cond_br bld cmp bthen belse;
  Builder.position_at_end bthen bld;
  pool := [ acc_phi; i_phi; v1; v2 ];
  random_arith (1 + Random.State.int rand 4);
  let tval = pick () in
  Builder.br bld latch;
  Builder.position_at_end belse bld;
  pool := [ acc_phi; i_phi; v2; Ir.const_int Types.Int 7L ];
  random_arith (1 + Random.State.int rand 4);
  let eval_ = pick () in
  Builder.br bld latch;
  Builder.position_at_end latch bld;
  let merged =
    Builder.phi_at_front bld Types.Int [ (tval, bthen); (eval_, belse) ]
  in
  let inext = Builder.add bld i_phi (Ir.const_int Types.Int 1L) in
  let done_ = Builder.setcc bld Ir.Ge inext (Ir.const_int Types.Int 10L) in
  Builder.cond_br bld done_ exit header;
  (match (i_phi, acc_phi) with
  | Ir.Vreg ip, Ir.Vreg ap ->
      Ir.phi_set_incoming ip
        [ (Ir.const_int Types.Int 0L, entry); (inext, latch) ];
      Ir.phi_set_incoming ap [ (seed_val, entry); (merged, latch) ]
  | _ -> assert false);
  Builder.position_at_end exit bld;
  let masked = Builder.and_ bld merged (Ir.const_int Types.Int 0xFFL) in
  Builder.ret bld (Some masked);
  m

let gen_program : Ir.modl QCheck.arbitrary =
  let open QCheck.Gen in
  let gen =
    let* seed = int_range 0 10_000_000 in
    return (random_program (Random.State.make [| seed |]))
  in
  QCheck.make gen ~print:(fun m -> Pretty.module_to_string m)

(* A richer generator that also exercises memory (arrays on the heap and
   stack), several integer widths and casts. *)
let random_memory_program rand : Ir.modl =
  let m = random_program rand in
  let f = Option.get (Ir.find_func m "main") in
  (* prepend to the entry block: fill a stack array, sum it back *)
  let entry = Ir.entry_block f in
  let bld = Builder.create m in
  Builder.position_at_end entry bld;
  (* remove the existing terminator, rebuild it at the end *)
  let term = Option.get (Ir.terminator entry) in
  let term_target =
    match term.Ir.operands.(0) with Ir.Vblock b -> b | _ -> assert false
  in
  Ir.remove_instr term;
  let n = 4 + Random.State.int rand 8 in
  let arr = Builder.alloca bld (Types.Array (n, Types.Short)) in
  let acc = ref (Ir.const_int Types.Int 0L) in
  for k = 0 to n - 1 do
    let slot =
      Builder.getelementptr bld arr
        [ Ir.const_int Types.Long 0L; Ir.const_int Types.Long (Int64.of_int k) ]
    in
    let v = Random.State.int rand 1000 - 500 in
    Builder.store bld (Ir.const_int Types.Short (Int64.of_int v)) slot;
    let back = Builder.load bld slot in
    let wide = Builder.cast bld back Types.Int in
    acc := Builder.add bld !acc wide
  done;
  (* merge into the global input so downstream arithmetic depends on it *)
  let g1 = Option.get (Ir.find_global m "in1") in
  let old = Builder.load bld (Ir.Vglobal g1) in
  let mixed = Builder.xor bld old !acc in
  Builder.store bld mixed (Ir.Vglobal g1);
  Builder.br bld term_target;
  m

let gen_memory_program : Ir.modl QCheck.arbitrary =
  let open QCheck.Gen in
  let gen =
    let* seed = int_range 0 10_000_000 in
    return (random_memory_program (Random.State.make [| seed |]))
  in
  QCheck.make gen ~print:(fun m -> Pretty.module_to_string m)

(* ------------------------------------------------------------------ *)
(* Full-coverage differential generator: seeded random programs over
   every integer width, signed and unsigned division and remainder
   (usually guarded, sometimes raw so traps stay an observable outcome),
   shifts whose amounts can exceed the width, casts between all scalar
   types, float arithmetic with NaN-feeding comparisons, in-bounds stack
   memory via alloca/gep/load/store, and multi-function calls. Inputs
   come from globals so constant folding cannot erase the computation,
   and a [print_long] call makes loop-carried state observable even when
   the final mask collapses it. *)

let int_widths =
  [|
    Types.Sbyte;
    Types.Ubyte;
    Types.Short;
    Types.Ushort;
    Types.Int;
    Types.Uint;
    Types.Long;
    Types.Ulong;
  |]

let random_full_program rand : Ir.modl =
  let ri n = Random.State.int rand n in
  let rbool () = Random.State.bool rand in
  let m = Ir.mk_module ~name:"fuzz" () in
  let print_long =
    Ir.mk_func ~name:"print_long" ~return:Types.Void
      ~params:[ ("v", Types.Long) ] ()
  in
  Ir.add_func m print_long;
  let add_global name ty ckind =
    let g = Ir.mk_global ~name ~ty ~init:{ Ir.cty = ty; ckind } () in
    Ir.add_global m g;
    g
  in
  let g1 = add_global "in1" Types.Int (Ir.Cint (Int64.of_int (ri 2000 - 1000))) in
  let g2 = add_global "in2" Types.Long (Ir.Cint (Int64.of_int (1 + ri 500))) in
  let gf =
    add_global "fin1" Types.Double
      (Ir.Cfloat [| 0.0; 1.5; -3.25; 1e18; Float.nan; Float.infinity |].(ri 6))
  in
  let bld = Builder.create m in
  let coerce v ty =
    if Types.equal (Ir.type_of_value v) ty then v else Builder.cast bld v ty
  in
  let pick pool = List.nth pool (ri (List.length pool)) in
  let any_int () = int_widths.(ri (Array.length int_widths)) in
  (* grow [pool] by [n] values at the current insertion point; every
     picked operand is coerced to the type the op needs, so any value in
     scope can feed any op *)
  let emit_ops pool (callees : Ir.func list) n =
    let pool = ref pool in
    for _ = 1 to n do
      let v =
        match ri 12 with
        | 0 | 1 | 2 | 3 ->
            let ty = any_int () in
            let ops = [| Ir.Add; Ir.Sub; Ir.Mul; Ir.And; Ir.Or; Ir.Xor |] in
            Builder.binop bld
              ops.(ri (Array.length ops))
              (coerce (pick !pool) ty) (coerce (pick !pool) ty)
        | 4 ->
            (* shift amounts can exceed the width: mod-width semantics *)
            let ty = any_int () in
            let amt =
              if rbool () then Ir.const_int Types.Ubyte (Int64.of_int (ri 72))
              else coerce (pick !pool) Types.Ubyte
            in
            Builder.binop bld
              (if rbool () then Ir.Shl else Ir.Shr)
              (coerce (pick !pool) ty) amt
        | 5 | 6 ->
            let ty = any_int () in
            let a = coerce (pick !pool) ty in
            let b = coerce (pick !pool) ty in
            let b =
              if ri 8 < 7 then
                (* guard the divisor into [1,127]: no zero, no -1 *)
                Builder.or_ bld
                  (Builder.and_ bld b (Ir.const_int ty 0x7FL))
                  (Ir.const_int ty 1L)
              else b
            in
            Builder.binop bld (if rbool () then Ir.Div else Ir.Rem) a b
        | 7 ->
            let ty = if rbool () then Types.Float else Types.Double in
            let ops = [| Ir.Add; Ir.Sub; Ir.Mul; Ir.Div |] in
            Builder.binop bld
              ops.(ri (Array.length ops))
              (coerce (pick !pool) ty) (coerce (pick !pool) ty)
        | 8 ->
            (* comparison, often float (NaN-sensitive), widened back *)
            let ty =
              if rbool () then if rbool () then Types.Float else Types.Double
              else any_int ()
            in
            let cmps = [| Ir.Eq; Ir.Ne; Ir.Lt; Ir.Le; Ir.Gt; Ir.Ge |] in
            let c =
              Builder.setcc bld
                cmps.(ri (Array.length cmps))
                (coerce (pick !pool) ty) (coerce (pick !pool) ty)
            in
            Builder.cast bld c Types.Long
        | 9 ->
            (* a cast corner: bounce through a float or a narrow width *)
            let mid =
              if ri 3 = 0 then if rbool () then Types.Float else Types.Double
              else any_int ()
            in
            coerce (coerce (pick !pool) mid) (any_int ())
        | _ -> (
            match callees with
            | [] ->
                let ty = any_int () in
                Builder.add bld (coerce (pick !pool) ty) (coerce (pick !pool) ty)
            | hs ->
                let h = List.nth hs (ri (List.length hs)) in
                let args =
                  List.map
                    (fun (a : Ir.arg) -> coerce (pick !pool) a.Ir.aty)
                    h.Ir.fargs
                in
                Builder.call bld (Ir.Vfunc h) args)
      in
      pool := v :: !pool
    done;
    !pool
  in
  (* fold the most recent few values into one observable Long so ops
     emitted mid-block cannot silently drop out of the program *)
  let mix pool =
    let rec take n = function
      | v :: rest when n > 0 -> v :: take (n - 1) rest
      | _ -> []
    in
    match take 3 pool with
    | [] -> Ir.const_int Types.Long 0L
    | v :: rest ->
        List.fold_left
          (fun acc v -> Builder.add bld acc (coerce v Types.Long))
          (coerce v Types.Long) rest
  in
  (* straight-line helper functions; later helpers may call earlier ones *)
  let mk_helper idx callees =
    let params =
      List.init (1 + ri 3) (fun k -> (Printf.sprintf "p%d" k, any_int ()))
    in
    let f =
      Ir.mk_func ~name:(Printf.sprintf "helper%d" idx) ~return:Types.Long
        ~params ()
    in
    Ir.add_func m f;
    let entry = Ir.mk_block ~name:"entry" () in
    Ir.append_block f entry;
    Builder.position_at_end entry bld;
    let pool =
      List.map (fun (a : Ir.arg) -> Ir.Varg a) f.Ir.fargs
      @ [
          Ir.const_int Types.Long 5L;
          Ir.const_int Types.Int (Int64.of_int (ri 100));
          Ir.const_float Types.Double Float.nan;
        ]
    in
    let pool = emit_ops pool callees (3 + ri 6) in
    Builder.ret bld (Some (mix pool));
    f
  in
  let helpers =
    let n = ri 3 in
    let rec go k acc =
      if k >= n then List.rev acc else go (k + 1) (mk_helper k acc :: acc)
    in
    go 0 []
  in
  let f = Ir.mk_func ~name:"main" ~return:Types.Int ~params:[] () in
  Ir.add_func m f;
  let entry = Ir.mk_block ~name:"entry" () in
  let header = Ir.mk_block ~name:"header" () in
  let bthen = Ir.mk_block ~name:"bthen" () in
  let belse = Ir.mk_block ~name:"belse" () in
  let latch = Ir.mk_block ~name:"latch" () in
  let exitb = Ir.mk_block ~name:"exit" () in
  List.iter (Ir.append_block f) [ entry; header; bthen; belse; latch; exitb ];
  Builder.position_at_end entry bld;
  let v1 = Builder.load bld (Ir.Vglobal g1) in
  let v2 = Builder.load bld (Ir.Vglobal g2) in
  let vf = Builder.load bld (Ir.Vglobal gf) in
  (* in-bounds stack memory: fill an array, fold it back *)
  let elem = [| Types.Sbyte; Types.Short; Types.Int; Types.Long |].(ri 4) in
  let n = 3 + ri 6 in
  let arr = Builder.alloca bld (Types.Array (n, elem)) in
  let msum = ref (Ir.const_int Types.Long 0L) in
  for k = 0 to n - 1 do
    let slot =
      Builder.getelementptr bld arr
        [ Ir.const_int Types.Long 0L; Ir.const_int Types.Long (Int64.of_int k) ]
    in
    let stored =
      if k mod 2 = 0 then Ir.const_int elem (Int64.of_int (ri 4096 - 2048))
      else coerce v1 elem
    in
    Builder.store bld stored slot;
    let back = Builder.load bld slot in
    msum := Builder.add bld !msum (coerce back Types.Long)
  done;
  let base =
    [
      v1;
      v2;
      vf;
      !msum;
      Ir.const_int Types.Int 3L;
      Ir.const_float Types.Double Float.nan;
      Ir.const_float Types.Float 0.5;
    ]
  in
  let pool0 = emit_ops base helpers (2 + ri 6) in
  let seed_val = mix pool0 in
  Builder.br bld header;
  Builder.position_at_end header bld;
  let i_phi = Builder.phi_at_front bld Types.Int [] in
  let acc_phi = Builder.phi_at_front bld Types.Long [] in
  let cmp =
    Builder.setcc bld Ir.Lt i_phi
      (Ir.const_int Types.Int (Int64.of_int (1 + ri 6)))
  in
  Builder.cond_br bld cmp bthen belse;
  Builder.position_at_end bthen bld;
  let pt =
    emit_ops
      [ acc_phi; coerce i_phi Types.Long; v1; v2; vf ]
      helpers (1 + ri 4)
  in
  let tval = mix pt in
  Builder.br bld latch;
  Builder.position_at_end belse bld;
  let pe =
    emit_ops
      [ acc_phi; v2; !msum; vf; Ir.const_int Types.Long 7L ]
      helpers (1 + ri 4)
  in
  let eval_ = mix pe in
  Builder.br bld latch;
  Builder.position_at_end latch bld;
  let merged =
    Builder.phi_at_front bld Types.Long [ (tval, bthen); (eval_, belse) ]
  in
  let inext = Builder.add bld i_phi (Ir.const_int Types.Int 1L) in
  let done_ =
    Builder.setcc bld Ir.Ge inext
      (Ir.const_int Types.Int (Int64.of_int (6 + ri 6)))
  in
  Builder.cond_br bld done_ exitb header;
  (match (i_phi, acc_phi) with
  | Ir.Vreg ip, Ir.Vreg ap ->
      Ir.phi_set_incoming ip
        [ (Ir.const_int Types.Int 0L, entry); (inext, latch) ];
      Ir.phi_set_incoming ap [ (seed_val, entry); (merged, latch) ]
  | _ -> assert false);
  Builder.position_at_end exitb bld;
  ignore (Builder.call bld (Ir.Vfunc print_long) [ merged ]);
  let masked = Builder.and_ bld merged (Ir.const_int Types.Long 0x7FL) in
  Builder.ret bld (Some (coerce masked Types.Int));
  m

let gen_full_program : Ir.modl QCheck.arbitrary =
  let open QCheck.Gen in
  let gen =
    let* seed = int_range 0 10_000_000 in
    return (random_full_program (Random.State.make [| seed |]))
  in
  QCheck.make gen ~print:(fun m -> Pretty.module_to_string m)

(* ------------------------------------------------------------------ *)
(* The five-engine differential driver. *)

let engine_names = [ "interp"; "x86"; "sparc"; "llee-x86"; "llee-sparc" ]

let engine_results ?(fuel = 4_000_000) (m : Ir.modl) :
    (string * Llee.Outcome.t * string) list =
  let interp () =
    let o, st = Llee.Outcome.run_main_interp ~fuel (clone m) in
    (o, Interp.output st)
  in
  let x86 () =
    let o, st =
      Llee.Outcome.run_main_x86 ~fuel (X86lite.Compile.compile_module (clone m))
    in
    (o, X86lite.Sim.output st)
  in
  let sparc () =
    let o, st =
      Llee.Outcome.run_main_sparc ~fuel
        (Sparclite.Compile.compile_module (clone m))
    in
    (o, Sparclite.Sim.output st)
  in
  let llee target () = Llee.run ~fuel (Llee.of_module ~target (clone m)) in
  List.map2
    (fun name launch ->
      let o, out = launch () in
      (name, o, out))
    engine_names
    [ interp; x86; sparc; llee Llee.X86; llee Llee.Sparc ]

(* the engine-independent summary of one run: outcome class (trap
   addresses are engine-specific, so traps compare by class) plus the
   runtime output byte stream *)
let observable (o : Llee.Outcome.t) (out : string) : string =
  let oc =
    match o with
    | Llee.Outcome.Exit c -> Printf.sprintf "exit:%d" c
    | Llee.Outcome.Trapped { kind; _ } -> "trap:" ^ Llee.Tv.trap_class kind
    | Llee.Outcome.Fuel_exhausted -> "fuel"
    | Llee.Outcome.Cache_degraded { reason } -> "degraded:" ^ reason
  in
  oc ^ "|" ^ out

(* [None] when all five engines agree. A fuel exhaustion anywhere makes
   the program budget-bound, not divergent, so it also reports [None]. *)
let divergence ?fuel (m : Ir.modl) : string option =
  let rs = engine_results ?fuel m in
  if List.exists (fun (_, o, _) -> o = Llee.Outcome.Fuel_exhausted) rs then None
  else
    match rs with
    | (n0, o0, out0) :: rest ->
        let ref_obs = observable o0 out0 in
        let bad =
          List.filter (fun (_, o, out) -> observable o out <> ref_obs) rest
        in
        if bad = [] then None
        else
          Some
            (String.concat "\n"
               (Printf.sprintf "%s: %s out=%S" n0 (Llee.Outcome.to_string o0)
                  out0
               :: List.map
                    (fun (n, o, out) ->
                      Printf.sprintf "%s: %s out=%S" n
                        (Llee.Outcome.to_string o) out)
                    bad))
    | [] -> None

(* Greedy structural shrinking: repeatedly erase one instruction,
   keeping a candidate only if it still verifies and the divergence
   survives. Uses of the erased value are replaced by a harmless typed
   constant — NOT undef, whose division/remainder semantics genuinely
   differ between engines and would let the shrinker manufacture phantom
   divergences the generator can never produce. Budget-bounded so a
   stubborn repro cannot stall the suite. *)
let shrink_divergence ?fuel (m0 : Ir.modl) : Ir.modl =
  let diverges m = divergence ?fuel m <> None in
  let neutral ty =
    if Types.equal ty Types.Bool then Some (Ir.const_bool true)
    else if Types.is_integer ty then Some (Ir.const_int ty 1L)
    else if Types.is_fp ty then Some (Ir.const_float ty 1.0)
    else None (* pointer-typed values stay *)
  in
  let try_erase m (fi, bi, k) =
    let m2 = clone m in
    match List.nth_opt m2.Ir.funcs fi with
    | None -> None
    | Some f -> (
        match List.nth_opt f.Ir.fblocks bi with
        | None -> None
        | Some b ->
            if k >= List.length b.Ir.instrs - 1 then None
              (* keep the terminator *)
            else
              let i = List.nth b.Ir.instrs k in
              let removable =
                if i.Ir.iuses = [] then true
                else
                  match neutral i.Ir.ity with
                  | Some v ->
                      Ir.replace_all_uses_with (Ir.Vreg i) v;
                      true
                  | None -> false
              in
              if not removable then None
              else (
                Ir.remove_instr i;
                match Verify.verify_module m2 with
                | [] -> Some m2
                | _ -> None))
  in
  let positions m =
    List.concat
      (List.mapi
         (fun fi (f : Ir.func) ->
           List.concat
             (List.mapi
                (fun bi (b : Ir.block) ->
                  List.mapi (fun k _ -> (fi, bi, k)) b.Ir.instrs)
                f.Ir.fblocks))
         m.Ir.funcs)
  in
  let budget = ref 400 in
  let cur = ref m0 in
  let progress = ref true in
  while !progress && !budget > 0 do
    progress := false;
    List.iter
      (fun p ->
        if (not !progress) && !budget > 0 then (
          decr budget;
          match try_erase !cur p with
          | Some m2 when diverges m2 ->
              cur := m2;
              progress := true
          | _ -> ()))
      (positions !cur)
  done;
  !cur
