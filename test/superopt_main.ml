(* @superopt: guards the committed peephole rewrite tables
   (test/tables/<target>.peep) and the superoptimizer behind them.

   1. Strict decode + oracle re-verification: every rewrite of both
      committed tables must still be certified by the simulator oracle
      on its fixed boundary and seeded random vectors. A rule the
      oracle refutes — because a back-end's semantics changed under it —
      fails the build rather than miscompiling at run time.

   2. Search determinism: two full searches over the 17-workload suite
      must produce byte-identical tables (the cache-identity story
      depends on it: same program, same table, same fingerprint).

   3. Behavior identity: every workload, compiled with the committed
      table applied, must produce exactly the interpreter's exit code
      and output on both back-ends — and never more cycles than the
      pass-off build.

   A fresh search that differs from the committed bytes is reported as
   a note (the selectors or the suite changed; regenerate with
   llva_superopt --out), not a failure: the committed rules remain
   sound as long as the oracle certifies them. *)

let failures = ref 0

let check name ok =
  if not ok then begin
    incr failures;
    Printf.printf "  FAIL %s\n%!" name
  end

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_table ~target path =
  match Superopt.Table.of_string ~expect_target:target (read_file path) with
  | tb -> tb
  | exception Superopt.Table.Invalid_table why ->
      Printf.printf "FAIL %s: invalid committed table: %s\n" path why;
      exit 1

let () =
  let x86_path, sparc_path =
    match Sys.argv with
    | [| _; a; b |] -> (a, b)
    | _ -> ("tables/x86lite.peep", "tables/sparclite.peep")
  in
  let tx = load_table ~target:"x86lite" x86_path in
  let ts = load_table ~target:"sparclite" sparc_path in
  Printf.printf
    "committed tables: x86lite %d rules (fingerprint %s), sparclite %d rules \
     (fingerprint %s)\n\
     %!"
    (Superopt.Table.count tx)
    (Superopt.Table.fingerprint tx)
    (Superopt.Table.count ts)
    (Superopt.Table.fingerprint ts);

  (* 1. oracle re-verification of every committed rewrite *)
  (match Superopt.Search.reverify tx with
  | [] -> Printf.printf "x86lite: all rules re-verified\n%!"
  | bad ->
      check
        (Printf.sprintf "x86lite rules refuted by the oracle: %s"
           (String.concat "," (List.map string_of_int bad)))
        false);
  (match Superopt.Search.reverify ts with
  | [] -> Printf.printf "sparclite: all rules re-verified\n%!"
  | bad ->
      check
        (Printf.sprintf "sparclite rules refuted by the oracle: %s"
           (String.concat "," (List.map string_of_int bad)))
        false);

  (* 2. search determinism over the training suite *)
  let mods =
    List.map (fun w -> Workloads.compile_optimized ~level:1 w) Workloads.all
  in
  let learn target = Superopt.Table.to_string (Superopt.Search.learn ~target mods) in
  let lx1 = learn "x86lite" in
  let lx2 = learn "x86lite" in
  check "x86lite search deterministic" (lx1 = lx2);
  let ls1 = learn "sparclite" in
  let ls2 = learn "sparclite" in
  check "sparclite search deterministic" (ls1 = ls2);
  if lx1 <> Superopt.Table.to_string tx then
    Printf.printf
      "note: committed x86lite table differs from a fresh search — selectors \
       or suite changed; regenerate with llva_superopt --out test/tables\n";
  if ls1 <> Superopt.Table.to_string ts then
    Printf.printf
      "note: committed sparclite table differs from a fresh search — \
       regenerate with llva_superopt --out test/tables\n";
  Printf.printf "determinism: two searches per target, identical bytes\n%!";

  (* 3. behavior identity on all 17 workloads with the pass enabled *)
  let px = Superopt.Table.x86_pairs tx in
  let ps = Superopt.Table.sparc_pairs ts in
  List.iter
    (fun (w : Workloads.workload) ->
      let name = w.Workloads.name in
      let m () = Workloads.compile_optimized ~level:1 w in
      let ist = Interp.create ~fuel:100_000_000 (m ()) in
      let icode = Interp.run_main ist in
      let iout = Interp.output ist in
      let xcode, xst =
        X86lite.Sim.run_main (X86lite.Compile.compile_module ~peep:px (m ()))
      in
      check
        (name ^ ": x86 behavior identical to interp with pass on")
        (xcode = icode && X86lite.Sim.output xst = iout);
      let x0code, x0st =
        X86lite.Sim.run_main (X86lite.Compile.compile_module (m ()))
      in
      check
        (name ^ ": x86 pass-on matches pass-off")
        (xcode = x0code && X86lite.Sim.output xst = X86lite.Sim.output x0st);
      check
        (name ^ ": x86 cycles no worse")
        (Int64.compare xst.X86lite.Sim.cycles x0st.X86lite.Sim.cycles <= 0);
      let scode, sst =
        Sparclite.Sim.run_main
          (Sparclite.Compile.compile_module ~peep:ps (m ()))
      in
      check
        (name ^ ": sparc behavior identical to interp with pass on")
        (scode = icode && Sparclite.Sim.output sst = iout);
      let s0code, s0st =
        Sparclite.Sim.run_main (Sparclite.Compile.compile_module (m ()))
      in
      check
        (name ^ ": sparc pass-on matches pass-off")
        (scode = s0code && Sparclite.Sim.output sst = Sparclite.Sim.output s0st);
      check
        (name ^ ": sparc cycles no worse")
        (Int64.compare sst.Sparclite.Sim.cycles s0st.Sparclite.Sim.cycles <= 0);
      Printf.printf "%-17s ok (x86 %Ld -> %Ld, sparc %Ld -> %Ld cycles)\n%!"
        name x0st.X86lite.Sim.cycles xst.X86lite.Sim.cycles
        s0st.Sparclite.Sim.cycles sst.Sparclite.Sim.cycles)
    Workloads.all;

  if !failures > 0 then begin
    Printf.printf "superopt gate FAILED: %d assertion(s)\n" !failures;
    exit 1
  end
  else Printf.printf "superopt gate passed\n"
