(* Back-end tests: both code generators run a battery of programs and a
   random differential property against the reference interpreter, with
   both register allocators and with/without the optimizer. *)

open Llva

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let run_x86 ?(linear_scan = false) ?(fuel = 50_000_000) m =
  let cm = X86lite.Compile.compile_module ~linear_scan m in
  let code, st = X86lite.Sim.run_main ~fuel cm in
  (code, X86lite.Sim.output st)

let run_sparc ?(spill_everything = false) ?(fuel = 50_000_000) m =
  let cm = Sparclite.Compile.compile_module ~spill_everything m in
  let code, st = Sparclite.Sim.run_main ~fuel cm in
  (code, Sparclite.Sim.output st)

let all_ways m =
  [
    ("interp", Gen.run_interp (Gen.clone m));
    ("x86 naive", run_x86 (Gen.clone m));
    ("x86 linear-scan", run_x86 ~linear_scan:true (Gen.clone m));
    ("sparc linear-scan", run_sparc (Gen.clone m));
    ("sparc naive", run_sparc ~spill_everything:true (Gen.clone m));
  ]

let check_agreement src =
  let m = Gen.parse src in
  match all_ways m with
  | [] -> ()
  | (ref_name, ref_result) :: rest ->
      List.iter
        (fun (name, result) ->
          if result <> ref_result then
            Alcotest.failf "%s disagrees with %s: (%d,%S) vs (%d,%S)" name
              ref_name (fst result) (snd result) (fst ref_result)
              (snd ref_result))
        rest

let test_basic_programs () =
  check_agreement
    {|
int %main() {
entry:
  %a = add int 20, 22
  ret int %a
}
|};
  check_agreement
    {|
declare void %print_int(int)
int %main() {
entry:
  br label %loop
loop:
  %i = phi int [ 0, %entry ], [ %n, %loop ]
  %acc = phi int [ 0, %entry ], [ %a2, %loop ]
  %a2 = add int %acc, %i
  %n = add int %i, 1
  %d = setge int %n, 100
  br bool %d, label %out, label %loop
out:
  call void %print_int(int %a2)
  ret int 0
}
|}

let test_widths_and_signs () =
  check_agreement
    {|
declare void %print_int(int)
int %main() {
entry:
  %a = add ubyte 200, 100
  %b = cast ubyte %a to int
  call void %print_int(int %b)
  %c = add sbyte 100, 100
  %d = cast sbyte %c to int
  call void %print_int(int %d)
  %e = div int -7, 2
  call void %print_int(int %e)
  %f = div uint 4294967295, 3
  %g = cast uint %f to int
  call void %print_int(int %g)
  %h = shr int -32, ubyte 2
  call void %print_int(int %h)
  %i2 = shr uint 4294967295, ubyte 28
  %j = cast uint %i2 to int
  call void %print_int(int %j)
  %k = rem int -7, 3
  call void %print_int(int %k)
  %l = mul short 1000, 1000
  %m2 = cast short %l to int
  call void %print_int(int %m2)
  ret int 0
}
|}

let test_comparisons () =
  check_agreement
    {|
declare void %print_int(int)
void %show(bool %b) {
entry:
  %v = cast bool %b to int
  call void %print_int(int %v)
  ret void
}
int %main() {
entry:
  %c1 = setlt int -1, 1
  call void %show(bool %c1)
  %c2 = setlt uint 4294967295, 1
  call void %show(bool %c2)
  %c3 = setge long -9000000000, 1
  call void %show(bool %c3)
  %c4 = setgt ubyte 200, 100
  call void %show(bool %c4)
  %c5 = seteq double 1.5, 1.5
  call void %show(bool %c5)
  %c6 = setlt double -2.5, 1.0
  call void %show(bool %c6)
  %c7 = setne float 1.0, 2.0
  call void %show(bool %c7)
  ret int 0
}
|}

let test_floats () =
  check_agreement
    {|
declare void %print_float(double)
int %main() {
entry:
  %a = add double 1.5, 2.25
  call void %print_float(double %a)
  %b = mul double %a, 2.0
  %c = div double %b, 3.0
  call void %print_float(double %c)
  %d = cast double %c to float
  %e = cast float %d to double
  call void %print_float(double %e)
  %f = cast double 3.99 to int
  %g = cast int %f to double
  call void %print_float(double %g)
  %h = sub float 10.5, 0.25
  %i2 = cast float %h to double
  call void %print_float(double %i2)
  %j = rem double 10.0, 3.0
  call void %print_float(double %j)
  ret int 0
}
|}

let test_memory () =
  check_agreement
    {|
%struct.node = type { int, %struct.node* }
declare sbyte* %malloc(uint)
declare void %free(sbyte*)
declare void %print_int(int)

int %main() {
entry:
  br label %build
build:
  %i = phi int [ 0, %entry ], [ %inext, %build ]
  %head = phi %struct.node* [ null, %entry ], [ %node, %build ]
  %raw = call sbyte* %malloc(uint 16)
  %node = cast sbyte* %raw to %struct.node*
  %vp = getelementptr %struct.node* %node, long 0, ubyte 0
  store int %i, int* %vp
  %np = getelementptr %struct.node* %node, long 0, ubyte 1
  store %struct.node* %head, %struct.node** %np
  %inext = add int %i, 1
  %done = setge int %inext, 10
  br bool %done, label %sum, label %build
sum:
  %cur = phi %struct.node* [ %node, %build ], [ %next, %sum ]
  %acc = phi int [ 0, %build ], [ %acc2, %sum ]
  %vp2 = getelementptr %struct.node* %cur, long 0, ubyte 0
  %v = load int* %vp2
  %acc2 = add int %acc, %v
  %np2 = getelementptr %struct.node* %cur, long 0, ubyte 1
  %next = load %struct.node** %np2
  %again = setne %struct.node* %next, null
  br bool %again, label %sum, label %out
out:
  call void %print_int(int %acc2)
  ret int %acc2
}
|}

let test_strings_and_globals () =
  check_agreement
    {|
%greeting = constant [15 x sbyte] c"hello backends\00"
%table = global [5 x int] [ int 10, int 20, int 30, int 40, int 50 ]
declare void %print_str(sbyte*)
declare void %print_int(int)
declare void %print_nl()

int %main() {
entry:
  %s = getelementptr [15 x sbyte]* %greeting, long 0, long 0
  call void %print_str(sbyte* %s)
  call void %print_nl()
  br label %loop
loop:
  %i = phi int [ 0, %entry ], [ %n, %loop ]
  %acc = phi int [ 0, %entry ], [ %acc2, %loop ]
  %p = getelementptr [5 x int]* %table, long 0, int %i
  %v = load int* %p
  %acc2 = add int %acc, %v
  %n = add int %i, 1
  %d = setge int %n, 5
  br bool %d, label %out, label %loop
out:
  call void %print_int(int %acc2)
  ret int 0
}
|}

let test_function_pointers () =
  check_agreement
    {|
int %twice(int %x) {
entry:
  %r = mul int %x, 2
  ret int %r
}
int %thrice(int %x) {
entry:
  %r = mul int %x, 3
  ret int %r
}
%dispatch = global [2 x int (int)*] [ int (int)* %twice, int (int)* %thrice ]
declare void %print_int(int)

int %main() {
entry:
  br label %loop
loop:
  %i = phi int [ 0, %entry ], [ %n, %loop ]
  %p = getelementptr [2 x int (int)*]* %dispatch, long 0, int %i
  %fp = load int (int)** %p
  %r = call int (int)* %fp(int 7)
  call void %print_int(int %r)
  %n = add int %i, 1
  %d = setge int %n, 2
  br bool %d, label %out, label %loop
out:
  ret int 0
}
|}

let test_invoke_unwind_native () =
  check_agreement
    {|
declare void %print_int(int)

void %thrower(int %depth) {
entry:
  %done = setle int %depth, 0
  br bool %done, label %throw, label %recurse
throw:
  unwind
recurse:
  %d = sub int %depth, 1
  call void %thrower(int %d)
  ret void
}

int %main() {
entry:
  %r = invoke int %wrap(int 3) to label %ok except label %caught
ok:
  call void %print_int(int %r)
  ret int 1
caught:
  call void %print_int(int 99)
  ret int 7
}

int %wrap(int %d) {
entry:
  call void %thrower(int %d)
  ret int 0
}
|}

let test_mbr () =
  check_agreement
    {|
declare void %print_int(int)
int %classify(int %x) {
entry:
  mbr int %x, label %other [ int 1, label %one, int 2, label %two, int 9, label %nine ]
one:
  ret int 100
two:
  ret int 200
nine:
  ret int 900
other:
  ret int -1
}
int %main() {
entry:
  br label %loop
loop:
  %i = phi int [ 0, %entry ], [ %n, %loop ]
  %c = call int %classify(int %i)
  call void %print_int(int %c)
  %n = add int %i, 1
  %d = setgt int %n, 10
  br bool %d, label %out, label %loop
out:
  ret int 0
}
|}

let test_varargs_style_many_args () =
  (* more arguments than SPARC register slots: exercises stack passing *)
  check_agreement
    {|
declare void %print_int(int)
int %sum9(int %a, int %b, int %c, int %d, int %e, int %f, int %g, int %h, int %i) {
entry:
  %s1 = add int %a, %b
  %s2 = add int %s1, %c
  %s3 = add int %s2, %d
  %s4 = add int %s3, %e
  %s5 = add int %s4, %f
  %s6 = add int %s5, %g
  %s7 = add int %s6, %h
  %s8 = add int %s7, %i
  ret int %s8
}
int %main() {
entry:
  %r = call int %sum9(int 1, int 2, int 3, int 4, int 5, int 6, int 7, int 8, int 9)
  call void %print_int(int %r)
  ret int %r
}
|}

let test_float_args_and_returns () =
  check_agreement
    {|
declare void %print_float(double)
double %mix(double %a, int %k, double %b, double %c, double %d, double %e, double %f, double %g) {
entry:
  %s1 = add double %a, %b
  %s2 = add double %s1, %c
  %s3 = add double %s2, %d
  %s4 = add double %s3, %e
  %s5 = add double %s4, %f
  %s6 = add double %s5, %g
  %ki = cast int %k to double
  %s7 = mul double %s6, %ki
  ret double %s7
}
int %main() {
entry:
  %r = call double %mix(double 1.5, int 3, double 2.5, double 3.5, double 4.5, double 0.5, double 10.0, double 0.25)
  call void %print_float(double %r)
  ret int 0
}
|}

let test_native_traps () =
  let src = "int %main() {\nentry:\n  %x = div int 1, 0\n  ret int %x\n}" in
  let m = Gen.parse src in
  let cm = X86lite.Compile.compile_module m in
  check_bool "x86 div-by-zero traps" true
    (try
       ignore (X86lite.Sim.run_main cm);
       false
     with X86lite.Sim.Trap X86lite.Sim.Division_by_zero -> true);
  let m2 = Gen.parse src in
  let cm2 = Sparclite.Compile.compile_module m2 in
  check_bool "sparc div-by-zero traps" true
    (try
       ignore (Sparclite.Sim.run_main cm2);
       false
     with Sparclite.Sim.Trap Sparclite.Sim.Division_by_zero -> true);
  (* disabled exceptions execute through *)
  check_agreement
    {|
int %main() {
entry:
  %x = div int 1, 0 @ee(false)
  ret int 5
}
|}

let test_native_smc () =
  check_agreement
    {|
declare void %llva.smc.replace(int (int)*, int (int)*)
declare void %print_int(int)

int %orig(int %x) {
entry:
  %r = add int %x, 1
  ret int %r
}
int %patched(int %x) {
entry:
  %r = add int %x, 10
  ret int %r
}
int %main() {
entry:
  %before = call int %orig(int 0)
  call void %print_int(int %before)
  call void %llva.smc.replace(int (int)* %orig, int (int)* %patched)
  %after = call int %orig(int 0)
  call void %print_int(int %after)
  ret int 0
}
|}

let test_expansion_ratio_sanity () =
  (* a mid-sized arithmetic program should expand by a factor between 1.5
     and 6 on both targets (paper: 2.2-3.3 X86, 2.4-4.2 SPARC) *)
  let m = Gen.random_program (Random.State.make [| 42 |]) in
  let llva_n = Ir.module_instr_count m in
  let x86 = X86lite.Compile.compile_module (Gen.clone m) in
  let sparc = Sparclite.Compile.compile_module (Gen.clone m) in
  let rx = float_of_int (X86lite.Compile.module_instr_count x86) /. float_of_int llva_n in
  let rs = float_of_int (Sparclite.Compile.module_instr_count sparc) /. float_of_int llva_n in
  check_bool (Printf.sprintf "x86 ratio %.2f in range" rx) true (rx > 1.2 && rx < 8.0);
  check_bool (Printf.sprintf "sparc ratio %.2f in range" rs) true (rs > 1.2 && rs < 8.0)

let test_cycle_counting () =
  let m =
    Gen.parse
      "int %main() {\nentry:\n  %x = add int 1, 2\n  ret int %x\n}"
  in
  let cm = X86lite.Compile.compile_module m in
  let _, st = X86lite.Sim.run_main cm in
  check_bool "cycles counted" true (Int64.compare st.X86lite.Sim.cycles 0L > 0);
  check_bool "icount counted" true (Int64.compare st.X86lite.Sim.icount 0L > 0);
  check_bool "cycles >= icount" true
    (Int64.compare st.X86lite.Sim.cycles st.X86lite.Sim.icount >= 0)

let test_code_size_nonzero () =
  let m = Gen.random_program (Random.State.make [| 7 |]) in
  let x86 = X86lite.Compile.compile_module (Gen.clone m) in
  let sparc = Sparclite.Compile.compile_module (Gen.clone m) in
  let xs = X86lite.Compile.module_code_size x86 in
  let ss = Sparclite.Compile.module_code_size sparc in
  check_bool "x86 bytes > 0" true (xs > 0);
  check_bool "sparc bytes = 4 * instrs" true
    (ss = 4 * Sparclite.Compile.module_instr_count sparc)

(* differential qcheck properties *)

let prop_backends_agree =
  QCheck.Test.make ~name:"backends agree with interpreter" ~count:60
    Gen.gen_program (fun m ->
      let reference = Gen.run_interp (Gen.clone m) in
      List.for_all
        (fun (_, r) -> r = reference)
        [
          ("x86", run_x86 (Gen.clone m));
          ("x86ls", run_x86 ~linear_scan:true (Gen.clone m));
          ("sparc", run_sparc (Gen.clone m));
        ])

let prop_backends_agree_memory =
  QCheck.Test.make ~name:"backends agree on memory programs" ~count:40
    Gen.gen_memory_program (fun m ->
      let reference = Gen.run_interp (Gen.clone m) in
      List.for_all
        (fun (_, r) -> r = reference)
        [
          ("x86", run_x86 (Gen.clone m));
          ("sparc", run_sparc (Gen.clone m));
          ("sparc naive", run_sparc ~spill_everything:true (Gen.clone m));
        ])

let prop_optimized_backends_agree =
  QCheck.Test.make ~name:"optimized code agrees on backends" ~count:40
    Gen.gen_program (fun m ->
      let reference = Gen.run_interp (Gen.clone m) in
      let opt = Gen.clone m in
      let _ = Transform.Passmgr.optimize ~level:2 opt in
      run_x86 (Gen.clone opt) = reference && run_sparc (Gen.clone opt) = reference)

let test_portability_native () =
  (* the same virtual object code runs on 32- and 64-bit pointer configs
     through the full native pipeline *)
  let src target =
    Printf.sprintf
      {|
target pointersize = %d
target endian = %s
%%pair = type { sbyte, int, %%pair* }
declare void %%print_int(int)
int %%main() {
entry:
  %%p = alloca %%pair
  %%f1 = getelementptr %%pair* %%p, long 0, ubyte 1
  store int 777, int* %%f1
  %%f2 = getelementptr %%pair* %%p, long 0, ubyte 2
  store %%pair* %%p, %%pair** %%f2
  %%q = load %%pair** %%f2
  %%f1b = getelementptr %%pair* %%q, long 0, ubyte 1
  %%v = load int* %%f1b
  call void %%print_int(int %%v)
  ret int %%v
}
|}
      (target.Target.ptr_size * 8)
      (match target.Target.endian with
      | Target.Little -> "little"
      | Target.Big -> "big")
  in
  List.iter
    (fun t ->
      let m = Gen.parse (src t) in
      let code, out = run_x86 m in
      check_int ("x86 on " ^ Target.to_string t) 777 code;
      check_string ("x86 out on " ^ Target.to_string t) "777" out;
      let m2 = Gen.parse (src t) in
      let code2, _ = run_sparc m2 in
      check_int ("sparc on " ^ Target.to_string t) 777 code2)
    Target.all

(* ---------- cycle/size model coverage ---------- *)

(* One exemplar per instruction constructor of each back-end. The cost
   models document a no-catch-all policy: every constructor must carry
   an explicit positive cost and encoded size, so a new instruction can
   never silently ride on a stale estimate. If a constructor is added,
   this list fails to type-check until an exemplar is added here too. *)
let x86_exemplars : X86lite.X86.instr list =
  let open X86lite.X86 in
  let m = { base = bp; disp = -8 } in
  [
    Mov (R ax, R cx);
    Alu (Add, W64, true, R ax, R cx);
    Alu (Imul, W64, true, R ax, R cx);
    Div (W64, true, R ax, R cx);
    Rem (W64, true, R ax, R cx);
    Shift (true, W64, true, R ax, I 3L);
    Ext (ax, W32, false);
    Mload (ax, m, W32, true);
    Mstore (m, ax, W32);
    Cmp (W64, true, R ax, R cx);
    Setcc (Eq, ax);
    Jcc (Eq, 0);
    Jmp 0;
    Lea (ax, m);
    Push (R ax);
    Pop ax;
    CallSym "f";
    CallInd (R ax);
    CallSymI ("f", 0);
    CallIndI (R ax, 0);
    Ret;
    Unwind;
    AddSp 8;
    SubSpDyn (ax, cx);
    Fmov (0, 1);
    Fconst (0, 1.0);
    Falu (Fadd, false, 0, 1);
    Falu (Fdiv, false, 0, 1);
    Falu (Frem, false, 0, 1);
    Fload (0, m, false);
    Fstore (m, 0, false);
    Fcmp (0, 1);
    Cvtif (0, ax, true);
    Cvtfi (ax, 0, W64, true);
    Fround 0;
    Fpushret 0;
    Trap "unreachable";
  ]

let sparc_exemplars : Sparclite.Sparc.instr list =
  let open Sparclite.Sparc in
  [
    Alu3 (Add, W64, true, 1, 2, Rs 3);
    Alu3 (Mul, W64, true, 1, 2, Rs 3);
    Alu3 (Div, W64, true, 1, 2, Rs 3);
    Alu3 (Rem, W64, true, 1, 2, Rs 3);
    Sethi (1, 4096L);
    Ld (W64, true, 1, fp, -8);
    St (W64, 1, fp, -8);
    Cmp (W64, true, 1, Rs 2);
    Movcc (Eq, 1);
    Bcc (Eq, 0);
    Ba 0;
    CallSym "f";
    CallInd 1;
    CallSymI ("f", 0);
    CallIndI (1, 0);
    RetS;
    UnwindS;
    AddSp 8;
    SubSpDyn (1, 2);
    Falu (Fadd, false, 0, 1, 2);
    Falu (Fdiv, false, 0, 1, 2);
    Falu (Frem, false, 0, 1, 2);
    Fmovs (0, 1);
    Fconst (0, 1.0);
    Fld (false, 0, fp, -8);
    Fst (false, 0, fp, -8);
    Fcmp (0, 1);
    Cvtif (0, 1, true);
    Cvtfi (1, 0, W64, true);
    Fround 0;
    Mvfi (1, 0);
    Mvif (0, 1);
    TrapS "unreachable";
  ]

let test_cost_model_explicit () =
  List.iter
    (fun i ->
      let c = X86lite.X86.cycles_of i in
      let s = X86lite.X86.size_of i in
      if c <= 0 || s <= 0 then
        Alcotest.failf "x86 %s: cycles=%d size=%d (must be positive)"
          (X86lite.X86.to_string i) c s)
    x86_exemplars;
  List.iter
    (fun i ->
      let c = Sparclite.Sparc.cycles_of i in
      let s = Sparclite.Sparc.size_of i in
      if c <= 0 || s <> 4 then
        Alcotest.failf "sparc %s: cycles=%d size=%d (must be >0 / =4)"
          (Sparclite.Sparc.to_string i) c s)
    sparc_exemplars;
  (* spot-check documented costs, including the formerly silently
     defaulted float divide/remainder *)
  let open X86lite.X86 in
  check_int "x86 fdiv" 15 (cycles_of (Falu (Fdiv, false, 0, 1)));
  check_int "x86 frem" 20 (cycles_of (Falu (Frem, false, 0, 1)));
  check_int "x86 fadd" 3 (cycles_of (Falu (Fadd, false, 0, 1)));
  check_int "x86 div" 20 (cycles_of (Div (W64, true, R ax, R cx)));
  check_int "x86 mem operand cost" 3
    (cycles_of (Mov (R ax, M { base = bp; disp = -8 })));
  let open Sparclite.Sparc in
  check_int "sparc fdiv" 15 (cycles_of (Falu (Fdiv, false, 0, 1, 2)));
  check_int "sparc frem" 20 (cycles_of (Falu (Frem, false, 0, 1, 2)));
  check_int "sparc div" 20 (cycles_of (Alu3 (Div, W64, true, 1, 2, Rs 3)))

(* ---------- selector-level redundant-move elision ---------- *)

let each_compiled_x86 m f =
  let cm = X86lite.Compile.compile_module m in
  Hashtbl.iter
    (fun _ (cf : X86lite.Compile.cfunc) ->
      Array.iter f cf.X86lite.Compile.code)
    cm.X86lite.Compile.funcs

let each_compiled_sparc m f =
  let cm = Sparclite.Compile.compile_module ~spill_everything:true m in
  Hashtbl.iter
    (fun _ (cf : Sparclite.Compile.cfunc) ->
      Array.iter f cf.Sparclite.Compile.code)
    cm.Sparclite.Compile.funcs

let test_no_redundant_moves () =
  (* the naive selectors elide self-moves and same-slot store+reload
     pairs at emit time; compiled workloads must contain no self-move *)
  let names = [ "ptrdist-anagram"; "181.mcf" ] in
  List.iter
    (fun name ->
      let w = Option.get (Workloads.find name) in
      each_compiled_x86 (Workloads.compile_optimized ~level:1 w) (function
        | X86lite.X86.Mov (X86lite.X86.R a, X86lite.X86.R b) when a = b ->
            Alcotest.failf "%s: x86 self-move survived emission" name
        | _ -> ());
      each_compiled_sparc (Workloads.compile_optimized ~level:1 w) (function
        | Sparclite.Sparc.Alu3
            (Sparclite.Sparc.Or, Sparclite.Sparc.W64, true, rd, rs,
             Sparclite.Sparc.Imm 0)
          when rd = rs ->
            Alcotest.failf "%s: sparc self-move survived emission" name
        | _ -> ()))
    names

(* ---------- peephole rule application ---------- *)

let test_apply_rules_x86 () =
  let open X86lite.X86 in
  (* strength reduction: imul-by-8 -> shl-by-3 (a rule shape the
     superoptimizer discovers; here applied by hand) *)
  let rules =
    [
      ( [ Alu (Imul, W64, true, R ax, I 8L) ],
        [ Shift (true, W64, true, R ax, I 3L) ] );
      ([ Ext (cx, W64, true) ], []);
    ]
  in
  let code =
    [|
      Jcc (Eq, 3); Alu (Imul, W64, true, R ax, I 8L); Ext (cx, W64, true); Ret;
    |]
  in
  let out, rewrites, saved = X86lite.Compile.apply_rules ~rules code in
  check_int "two rewrites" 2 rewrites;
  (* imul(3) -> shl(1) saves 2; ext(1) -> nothing saves 1 *)
  check_int "three cycles saved" 3 saved;
  check_bool "rewritten code" true
    (out
    = [| Jcc (Eq, 2); Shift (true, W64, true, R ax, I 3L); Ret |]);
  (* the branch target was remapped across the deleted instruction *)
  (match out.(0) with
  | Jcc (Eq, t) -> check_int "branch target remapped" 2 t
  | _ -> Alcotest.fail "branch lost");
  (* a window containing a jump target must not be rewritten *)
  let code2 =
    [| Jmp 2; Alu (Imul, W64, true, R ax, I 8L); Ext (cx, W64, true); Ret |]
  in
  let _, rw2, _ = X86lite.Compile.apply_rules ~rules code2 in
  (* the imul rewrites (no target inside); position 2 is a jump target,
     and single-instruction windows starting there are still legal *)
  check_bool "rewrites bounded" true (rw2 >= 1);
  (* empty rule set: code unchanged, nothing counted *)
  let out3, rw3, sv3 = X86lite.Compile.apply_rules ~rules:[] code in
  check_bool "no rules, no change" true (out3 = code && rw3 = 0 && sv3 = 0)

let test_apply_rules_sparc () =
  let open Sparclite.Sparc in
  let rules =
    [
      ( [ Alu3 (Mul, W64, true, 1, 1, Imm 8) ],
        [ Alu3 (Sll, W64, true, 1, 1, Imm 3) ] );
    ]
  in
  let code =
    [| Alu3 (Mul, W64, true, 1, 1, Imm 8); Bcc (Eq, 0); RetS |]
  in
  let out, rewrites, saved = Sparclite.Compile.apply_rules ~rules code in
  check_int "one rewrite" 1 rewrites;
  check_int "two cycles saved" 2 saved;
  check_bool "strength-reduced" true
    (out = [| Alu3 (Sll, W64, true, 1, 1, Imm 3); Bcc (Eq, 0); RetS |])

let test_canon_window_roundtrip () =
  let open X86lite.X86 in
  (* two distinct bp slots canonicalize to the first-occurrence variables
     and the variable assignment comes back in [vars] *)
  let w =
    [
      Mov (R ax, M { base = bp; disp = -16 });
      Mov (M { base = bp; disp = -8 }, R ax);
    ]
  in
  let cw, vars = X86lite.Compile.canon_window w in
  check_int "two slot variables" 2 (Array.length vars);
  check_bool "vars recorded in order" true (vars.(0) = -16 && vars.(1) = -8);
  check_bool "canonical form is slot-independent" true
    (fst
       (X86lite.Compile.canon_window
          [
            Mov (R ax, M { base = bp; disp = -48 });
            Mov (M { base = bp; disp = -40 }, R ax);
          ])
    = cw);
  (* a non-canonicalizable window (sp-relative) is returned unchanged
     with no variables: it can never match a learned rule *)
  let w2 = [ Mov (R ax, M { base = sp; disp = 0 }) ] in
  let cw2, vars2 = X86lite.Compile.canon_window w2 in
  check_bool "sp window left concrete" true (cw2 = w2 && vars2 = [||])

let suite =
  [
    Alcotest.test_case "basic programs" `Quick test_basic_programs;
    Alcotest.test_case "widths and signs" `Quick test_widths_and_signs;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "floats" `Quick test_floats;
    Alcotest.test_case "memory" `Quick test_memory;
    Alcotest.test_case "strings and globals" `Quick test_strings_and_globals;
    Alcotest.test_case "function pointers" `Quick test_function_pointers;
    Alcotest.test_case "invoke/unwind native" `Quick test_invoke_unwind_native;
    Alcotest.test_case "mbr" `Quick test_mbr;
    Alcotest.test_case "many args" `Quick test_varargs_style_many_args;
    Alcotest.test_case "float args" `Quick test_float_args_and_returns;
    Alcotest.test_case "native traps" `Quick test_native_traps;
    Alcotest.test_case "native smc" `Quick test_native_smc;
    Alcotest.test_case "expansion ratio" `Quick test_expansion_ratio_sanity;
    Alcotest.test_case "cycle counting" `Quick test_cycle_counting;
    Alcotest.test_case "code size" `Quick test_code_size_nonzero;
    Alcotest.test_case "portability native" `Quick test_portability_native;
    Alcotest.test_case "cost model explicit" `Quick test_cost_model_explicit;
    Alcotest.test_case "no redundant moves" `Quick test_no_redundant_moves;
    Alcotest.test_case "apply rules x86" `Quick test_apply_rules_x86;
    Alcotest.test_case "apply rules sparc" `Quick test_apply_rules_sparc;
    Alcotest.test_case "canon window roundtrip" `Quick
      test_canon_window_roundtrip;
    QCheck_alcotest.to_alcotest prop_backends_agree;
    QCheck_alcotest.to_alcotest prop_backends_agree_memory;
    QCheck_alcotest.to_alcotest prop_optimized_backends_agree;
  ]
