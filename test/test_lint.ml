(* Tests for llva-lint: seeded-bug fixtures (one true positive per check
   id), clean-module and clean-workload negatives, interprocedural
   summaries, deterministic ordering, the JSON report round-trip, and the
   verifier-gate regressions (Pass_broke_module + per-error-class verify
   fixtures). *)

open Llva

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* Parse, assert the fixture verifies (lint requires verified input),
   and run the analyzer with every check enabled. *)
let lint_src ?checks src =
  let m = Resolve.parse_module src in
  (match Verify.verify_module m with
  | [] -> ()
  | errs -> Alcotest.failf "fixture does not verify: %s" (String.concat "; " errs));
  Check.Lint.run ?checks m

let lint_all src = lint_src ~checks:Check.Lint.check_ids src

let diags_for check diags =
  List.filter (fun (d : Check.Diag.t) -> d.Check.Diag.check = check) diags

let expect_check ~check ~sev ~func diags =
  match diags_for check diags with
  | [] ->
      Alcotest.failf "expected a %s diagnostic; got: %s" check
        (Check.Diag.render_text diags)
  | d :: _ ->
      check_string (check ^ " function") func d.Check.Diag.func;
      check_bool (check ^ " severity") true (d.Check.Diag.sev = sev)

(* ---------- seeded-bug fixtures: one true positive per check ---------- *)

let test_uninit_load () =
  let diags =
    lint_all
      {|
int %f() {
entry:
  %x = alloca int
  %v = load int* %x
  ret int %v
}
|}
  in
  expect_check ~check:"uninit-load" ~sev:Check.Diag.Error ~func:"f" diags

let test_maybe_uninit_load () =
  let src =
    {|
int %f(bool %c) {
entry:
  %x = alloca int
  br bool %c, label %init, label %skip
init:
  store int 1, int* %x
  br label %join
skip:
  br label %join
join:
  %v = load int* %x
  ret int %v
}
|}
  in
  expect_check ~check:"maybe-uninit-load" ~sev:Check.Diag.Warning ~func:"f"
    (lint_all src);
  (* one-path initialization is NOT a definite bug *)
  check_int "no definite uninit" 0 (List.length (diags_for "uninit-load" (lint_all src)));
  (* ...and the maybe-* check is opt-in: silent under the default set *)
  check_int "opt-in check off by default" 0 (List.length (lint_src src))

let test_initialized_load_is_clean () =
  let diags =
    lint_all
      {|
int %f() {
entry:
  %x = alloca int
  store int 7, int* %x
  %v = load int* %x
  ret int %v
}
|}
  in
  check_int "clean init/load" 0 (List.length diags)

let test_oob_access () =
  let diags =
    lint_all
      {|
int %f() {
entry:
  %buf = alloca int, uint 4
  store int 1, int* %buf
  %p = getelementptr int* %buf, long 6
  %v = load int* %p
  ret int %v
}
|}
  in
  let oob = diags_for "oob-access" diags in
  check_bool "oob load is an error" true
    (List.exists
       (fun (d : Check.Diag.t) -> d.Check.Diag.sev = Check.Diag.Error)
       oob);
  (* the gep itself lands outside the 16-byte object too *)
  check_bool "oob gep flagged" true (List.length oob >= 2)

let test_one_past_end_gep_allowed () =
  (* the canonical end-pointer loop idiom must stay silent *)
  let diags =
    lint_all
      {|
int %f() {
entry:
  %buf = alloca int, uint 4
  store int 1, int* %buf
  %endp = getelementptr int* %buf, long 4
  %v = load int* %buf
  ret int %v
}
|}
  in
  check_int "one-past-end gep clean" 0 (List.length diags)

let test_null_deref () =
  let diags =
    lint_all
      {|
void %f() {
entry:
  store int 1, int* null
  ret void
}
|}
  in
  expect_check ~check:"null-deref" ~sev:Check.Diag.Error ~func:"f" diags

let test_null_arg () =
  (* unconditional deref in the callee: the call provably faults, so the
     finding is an Error and blames the callee via [related] *)
  let diags =
    lint_all
      {|
int %deref(int* %p) {
entry:
  %v = load int* %p
  ret int %v
}
int %main() {
entry:
  %r = call int %deref(int* null)
  ret int %r
}
|}
  in
  expect_check ~check:"null-arg" ~sev:Check.Diag.Error ~func:"main" diags;
  (match diags_for "null-arg" diags with
  | d :: _ ->
      check_bool "null-arg blames callee" true
        (List.mem "deref" d.Check.Diag.related)
  | [] -> ());
  (* a callee that only dereferences on one branch stays a Warning *)
  let diags =
    lint_all
      {|
int %deref_if(int* %p, bool %c) {
entry:
  br bool %c, label %yes, label %no
yes:
  %v = load int* %p
  ret int %v
no:
  ret int 0
}
int %main() {
entry:
  %r = call int %deref_if(int* null, bool true)
  ret int %r
}
|}
  in
  expect_check ~check:"null-arg" ~sev:Check.Diag.Warning ~func:"main" diags

let test_dangling_pointer () =
  let diags =
    lint_all
      {|
int* %escape() {
entry:
  %x = alloca int
  store int 1, int* %x
  ret int* %x
}
|}
  in
  expect_check ~check:"dangling-pointer" ~sev:Check.Diag.Error ~func:"escape"
    diags;
  let diags2 =
    lint_all
      {|
%cache = global int* null
void %stash() {
entry:
  %x = alloca int
  store int 1, int* %x
  store int* %x, int** %cache
  ret void
}
|}
  in
  expect_check ~check:"dangling-pointer" ~sev:Check.Diag.Warning ~func:"stash"
    diags2

let test_div_by_zero () =
  let diags =
    lint_all
      {|
int %f(int %a) {
entry:
  %d = div int %a, 0
  ret int %d
}
|}
  in
  expect_check ~check:"div-by-zero" ~sev:Check.Diag.Error ~func:"f" diags

let test_unreachable_block () =
  let diags =
    lint_all
      {|
int %f() {
entry:
  ret int 0
dead:
  ret int 1
}
|}
  in
  expect_check ~check:"unreachable-block" ~sev:Check.Diag.Warning ~func:"f"
    diags;
  match diags_for "unreachable-block" diags with
  | d :: _ -> check_string "block name" "dead" d.Check.Diag.block
  | [] -> Alcotest.fail "unreachable"

let test_dead_store () =
  let diags =
    lint_all
      {|
void %f() {
entry:
  %x = alloca int
  store int 1, int* %x
  store int 2, int* %x
  ret void
}
|}
  in
  check_int "one diag per dead store" 2
    (List.length (diags_for "dead-store" diags));
  expect_check ~check:"dead-store" ~sev:Check.Diag.Warning ~func:"f" diags

let test_unused_result () =
  let diags =
    lint_all
      {|
int %pure_add(int %a) {
entry:
  %r = add int %a, 1
  ret int %r
}
void %main() {
entry:
  %u = call int %pure_add(int 1)
  ret void
}
|}
  in
  expect_check ~check:"unused-result" ~sev:Check.Diag.Warning ~func:"main"
    diags

(* a call into a writing callee counts as initialization, and its unused
   result must NOT be flagged (the callee is impure) *)
let test_initializing_callee () =
  let diags =
    lint_all
      {|
void %init(int* %out) {
entry:
  store int 42, int* %out
  ret void
}
int %main() {
entry:
  %x = alloca int
  call void %init(int* %x)
  %v = load int* %x
  ret int %v
}
|}
  in
  check_int "callee-initialized buffer is clean" 0 (List.length diags)

let test_unknown_check_rejected () =
  check_bool "unknown check raises" true
    (try
       ignore (lint_src ~checks:[ "not-a-check" ] "int %f() {\nentry:\n  ret int 0\n}\n");
       false
     with Check.Lint.Unknown_check "not-a-check" -> true)

(* ---------- interprocedural summaries ---------- *)

let summaries_fixture =
  {|
declare int %ext(int)
int %reads(int* %p) {
entry:
  %v = load int* %p
  ret int %v
}
void %writes(int* %p) {
entry:
  store int 1, int* %p
  ret void
}
int* %leaks(int* %p) {
entry:
  ret int* %p
}
int %chains(int* %p) {
entry:
  %v = call int %reads(int* %p)
  ret int %v
}
int %impure(int %a) {
entry:
  %r = call int %ext(int %a)
  ret int %r
}
|}

let test_summaries () =
  let m = Resolve.parse_module summaries_fixture in
  let t = Check.Summaries.compute m in
  let s name = Check.Summaries.func_summary t (Option.get (Ir.find_func m name)) in
  let arg name k = Check.Summaries.arg_summary (s name) k in
  check_bool "reads derefs" true (arg "reads" 0).Check.Summaries.derefs;
  check_bool "reads does not escape" false (arg "reads" 0).Check.Summaries.escapes;
  check_bool "reads does not write" false (arg "reads" 0).Check.Summaries.writes;
  check_bool "reads is pure" true (s "reads").Check.Summaries.pure;
  check_bool "writes writes" true (arg "writes" 0).Check.Summaries.writes;
  check_bool "writes is impure" false (s "writes").Check.Summaries.pure;
  check_bool "leaks escapes" true (arg "leaks" 0).Check.Summaries.escapes;
  (* facts propagate bottom-up through the call graph *)
  check_bool "chains derefs via callee" true (arg "chains" 0).Check.Summaries.derefs;
  check_bool "chains does not escape" false (arg "chains" 0).Check.Summaries.escapes;
  check_bool "chains is pure" true (s "chains").Check.Summaries.pure;
  (* declarations stay unknown; callers of them are impure *)
  check_bool "decl arg escapes" true (Check.Summaries.arg_summary (s "ext") 0).Check.Summaries.escapes;
  check_bool "caller of decl impure" false (s "impure").Check.Summaries.pure

(* ---------- alias: phi look-through (the V-ISA select form) ---------- *)

let test_alias_phi_same_base () =
  let m =
    Resolve.parse_module
      {|
int %f(bool %c) {
entry:
  %buf = alloca int, uint 4
  br bool %c, label %a, label %b
a:
  %p1 = getelementptr int* %buf, long 1
  br label %join
b:
  %p2 = getelementptr int* %buf, long 2
  br label %join
join:
  %p = phi int* [ %p1, %a ], [ %p2, %b ]
  %v = load int* %p
  ret int %v
}
|}
  in
  let f = Option.get (Ir.find_func m "f") in
  let instr name =
    Option.get
      (Ir.fold_instrs
         (fun acc i -> if i.Ir.iname = name then Some i else acc)
         None f)
  in
  (match Analysis.Alias.base_object (Ir.Vreg (instr "p")) with
  | Analysis.Alias.Balloca a -> check_string "phi base" "buf" a.Ir.iname
  | _ -> Alcotest.fail "phi of two geps off one alloca should resolve");
  let lt = Vmem.Layout.for_module m in
  check_bool "phi and its base may alias" true
    (Analysis.Alias.alias lt (Ir.Vreg (instr "p")) (Ir.Vreg (instr "buf"))
    <> Analysis.Alias.No_alias)

let test_alias_phi_mixed_bases () =
  let m =
    Resolve.parse_module
      {|
int %f(bool %c) {
entry:
  %x = alloca int
  %y = alloca int
  br bool %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %p = phi int* [ %x, %a ], [ %y, %b ]
  %v = load int* %p
  ret int %v
}
|}
  in
  let f = Option.get (Ir.find_func m "f") in
  let p =
    Option.get
      (Ir.fold_instrs
         (fun acc i -> if i.Ir.iname = "p" then Some i else acc)
         None f)
  in
  check_bool "mixed-base phi stays unknown" true
    (Analysis.Alias.base_object (Ir.Vreg p) = Analysis.Alias.Bunknown)

let test_alias_phi_cyclic () =
  (* pointer-increment loop: the recursive arm goes through the phi
     itself; the acyclic arm pins the base *)
  let m =
    Resolve.parse_module
      {|
int %sum(int %n) {
entry:
  %buf = alloca int, uint 8
  store int 1, int* %buf
  br label %header
header:
  %p = phi int* [ %buf, %entry ], [ %pn, %latch ]
  %i = phi int [ 0, %entry ], [ %in, %latch ]
  %c = setlt int %i, %n
  br bool %c, label %latch, label %exit
latch:
  %v = load int* %p
  %pn = getelementptr int* %p, long 1
  %in = add int %i, 1
  br label %header
exit:
  ret int 0
}
|}
  in
  let f = Option.get (Ir.find_func m "sum") in
  let p =
    Option.get
      (Ir.fold_instrs
         (fun acc i -> if i.Ir.iname = "p" then Some i else acc)
         None f)
  in
  match Analysis.Alias.base_object (Ir.Vreg p) with
  | Analysis.Alias.Balloca a -> check_string "cyclic phi base" "buf" a.Ir.iname
  | _ -> Alcotest.fail "cyclic phi should resolve through the acyclic arm"

(* ---------- determinism and the JSON report ---------- *)

let multi_bug_src =
  {|
int %zeta(int %a) {
entry:
  %d = div int %a, 0
  %x = alloca int
  %v = load int* %x
  ret int %v
}
void %alpha() {
entry:
  %y = alloca int
  store int 1, int* %y
  ret void
dead:
  ret void
}
|}

let test_deterministic_order () =
  let d1 = lint_all multi_bug_src and d2 = lint_all multi_bug_src in
  check_string "two runs render identically" (Check.Diag.render_text d1)
    (Check.Diag.render_text d2);
  (* the report is sorted by the documented key *)
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        Check.Diag.compare_diag a b <= 0 && sorted rest
    | _ -> true
  in
  check_bool "sorted by position" true (sorted d1);
  (* module order (zeta before alpha), not name order *)
  match d1 with
  | first :: _ -> check_string "module order wins" "zeta" first.Check.Diag.func
  | [] -> Alcotest.fail "expected diagnostics"

let test_json_roundtrip () =
  let diags = lint_all multi_bug_src in
  check_bool "fixture has both severities" true
    (Check.Diag.count_severity Check.Diag.Error diags > 0
    && Check.Diag.count_severity Check.Diag.Warning diags > 0);
  let j = Check.Json.parse (Check.Diag.render_json diags) in
  check_int "version" Check.Diag.schema_version
    (Check.Json.get_int "version" (Check.Json.get_member "report" "version" j));
  check_int "errors field" (Check.Diag.count_severity Check.Diag.Error diags)
    (Check.Json.get_int "errors" (Check.Json.get_member "report" "errors" j));
  let back = Check.Diag.of_json j in
  check_int "same count" (List.length diags) (List.length back);
  List.iter2
    (fun (a : Check.Diag.t) (b : Check.Diag.t) ->
      check_string "check" a.Check.Diag.check b.Check.Diag.check;
      check_bool "severity" true (a.Check.Diag.sev = b.Check.Diag.sev);
      check_string "function" a.Check.Diag.func b.Check.Diag.func;
      check_string "block" a.Check.Diag.block b.Check.Diag.block;
      check_int "instr" a.Check.Diag.instr b.Check.Diag.instr;
      check_string "site" a.Check.Diag.site b.Check.Diag.site;
      check_string "message" a.Check.Diag.msg b.Check.Diag.msg;
      check_string "relation" a.Check.Diag.relation b.Check.Diag.relation;
      check_bool "related" true
        (a.Check.Diag.related = b.Check.Diag.related))
    diags back;
  (* compact and pretty forms parse to the same value *)
  check_bool "pretty/compact agree" true
    (Check.Json.parse (Check.Json.to_string ~pretty:false (Check.Diag.to_json diags)) = Check.Json.parse (Check.Diag.render_json diags));
  check_bool "malformed json rejected" true
    (try
       ignore (Check.Json.parse "{\"version\": }");
       false
     with Check.Json.Parse_error _ -> true);
  check_bool "wrong version rejected" true
    (try
       ignore (Check.Diag.of_json (Check.Json.parse "{\"version\": 99, \"diagnostics\": []}"));
       false
     with Check.Json.Parse_error _ -> true)

let test_json_unicode_escapes () =
  (* exactly four hex digits: OCaml's int_of_string would also accept
     literal syntax like "0_41", which is not JSON *)
  check_bool "valid \\u escape accepted" true
    (Check.Json.parse "\"\\u0041\"" = Check.Json.Str "A");
  check_bool "lowercase hex accepted" true
    (Check.Json.parse "\"\\u000a\"" = Check.Json.Str "\n");
  let rejects src =
    try
      ignore (Check.Json.parse src);
      false
    with Check.Json.Parse_error _ -> true
  in
  check_bool "underscore digit-separator rejected" true (rejects "\"\\u0_41\"");
  check_bool "non-hex characters rejected" true (rejects "\"\\u00gz\"");
  check_bool "nested 0x prefix rejected" true (rejects "\"\\u0x41\"");
  check_bool "truncated escape rejected" true (rejects "\"\\u00\"");
  (* control characters still round-trip through the printer's \u form *)
  check_bool "control char round-trips" true
    (Check.Json.parse (Check.Json.to_string (Check.Json.Str "\x01"))
    = Check.Json.Str "\x01")

(* A diagnostic born from the relational layer carries the proven fact in
   its [relation] field, renders it as a [rel: ...] suffix, and keeps it
   through the JSON round trip. *)
let test_relation_field () =
  let diags =
    lint_all
      {|
long %last(long %n) {
entry:
  %buf = alloca int, long %n
  %first = getelementptr int* %buf, long 0
  store int 7, int* %first
  %slot = getelementptr int* %buf, long %n
  %v = load int* %slot
  %vw = cast int %v to long
  ret long %vw
}
|}
  in
  match diags with
  | [ d ] ->
      check_string "check" "oob-access" d.Check.Diag.check;
      check_bool "severity" true (d.Check.Diag.sev = Check.Diag.Error);
      check_string "proven relation" "%n >= len(%buf)" d.Check.Diag.relation;
      check_bool "text rendering shows the relation" true
        (contains (Check.Diag.render_text diags) "[rel: %n >= len(%buf)]");
      let back = Check.Diag.of_json (Check.Json.parse (Check.Diag.render_json diags)) in
      check_string "relation survives the round trip" "%n >= len(%buf)"
        (List.hd back).Check.Diag.relation
  | ds ->
      Alcotest.failf "expected exactly the symbolic oob error, got %d diags"
        (List.length ds)

(* ---------- cacheable verdicts ---------- *)

let test_verdict_roundtrip () =
  let m = Resolve.parse_module multi_bug_src in
  let v = Check.Lint.verdict ~checks:Check.Lint.check_ids m in
  check_bool "fixture verdict is not clean" false (Check.Lint.verdict_clean v);
  check_bool "verdict has errors" true (Check.Lint.verdict_errors v > 0);
  let j = Check.Json.to_string (Check.Lint.verdict_to_json v) in
  let v2 = Check.Lint.verdict_of_json (Check.Json.parse j) in
  check_int "version stamp preserved" Check.Lint.version
    v2.Check.Lint.v_version;
  check_bool "checks preserved" true
    (v2.Check.Lint.v_checks = Check.Lint.check_ids);
  check_int "finding count preserved"
    (List.length (Check.Lint.verdict_diags v))
    (List.length (Check.Lint.verdict_diags v2));
  check_int "error count preserved" (Check.Lint.verdict_errors v)
    (Check.Lint.verdict_errors v2);
  check_int "warning count preserved" (Check.Lint.verdict_warnings v)
    (Check.Lint.verdict_warnings v2);
  (* a clean module's verdict is clean and round-trips too *)
  let clean =
    Check.Lint.verdict (Resolve.parse_module "int %f() {\nentry:\n  ret int 0\n}\n")
  in
  check_bool "clean verdict" true (Check.Lint.verdict_clean clean);
  check_bool "clean verdict round-trips clean" true
    (Check.Lint.verdict_clean
       (Check.Lint.verdict_of_json
          (Check.Json.parse
             (Check.Json.to_string (Check.Lint.verdict_to_json clean)))))

let test_verdict_strict_reader () =
  let rejects src =
    try
      ignore (Check.Lint.verdict_of_json (Check.Json.parse src));
      false
    with Check.Json.Parse_error _ -> true
  in
  let payload ?(version = Check.Lint.version) ?(checks = "") () =
    Printf.sprintf
      "{\"lint_version\": %d, \"checks\": [%s], \"report\": {\"version\": \
       %d, \"errors\": 0, \"warnings\": 0, \"diagnostics\": []}}"
      version checks Check.Diag.schema_version
  in
  check_bool "current version accepted" true
    (Check.Lint.verdict_clean
       (Check.Lint.verdict_of_json (Check.Json.parse (payload ()))));
  check_bool "stale version stamp rejected" true
    (rejects (payload ~version:(Check.Lint.version + 1) ()));
  check_bool "ancient version stamp rejected" true (rejects (payload ~version:0 ()));
  check_bool "unknown check id rejected" true
    (rejects (payload ~checks:"\"no-such-check\"" ()));
  check_bool "missing fields rejected" true
    (rejects (Printf.sprintf "{\"lint_version\": %d}" Check.Lint.version));
  check_bool "mistyped checks rejected" true
    (rejects
       (Printf.sprintf
          "{\"lint_version\": %d, \"checks\": 3, \"report\": {\"version\": \
           %d, \"errors\": 0, \"warnings\": 0, \"diagnostics\": []}}"
          Check.Lint.version Check.Diag.schema_version))

(* ---------- the acceptance bar: optimized workloads are clean ---------- *)

let test_workloads_clean () =
  List.iter
    (fun w ->
      let m = Workloads.compile_optimized ~level:2 w in
      match Check.Lint.run m with
      | [] -> ()
      | diags ->
          Alcotest.failf "%s: expected a clean lint, got:\n%s"
            w.Workloads.name (Check.Diag.render_text diags))
    Workloads.all

(* ---------- verifier gates (satellite: broken-pass reporting) ---------- *)

(* one fixture per Verify error class, asserting the message text the
   tools print with their non-zero exit *)

let test_verify_type_rule_message () =
  let m = Ir.mk_module () in
  let f = Ir.mk_func ~name:"f" ~return:Types.Int ~params:[] () in
  Ir.add_func m f;
  let b = Ir.mk_block ~name:"entry" () in
  Ir.append_block f b;
  let bad =
    Ir.mk_instr ~name:"x" (Ir.Binop Ir.Add)
      [| Ir.const_int Types.Int 1L; Ir.const_int Types.Long 2L |]
      Types.Int
  in
  Ir.append_instr b bad;
  Ir.append_instr b (Ir.mk_instr Ir.Ret [| Ir.Vreg bad |] Types.Void);
  match Verify.verify_module m with
  | [] -> Alcotest.fail "ill-typed add must not verify"
  | errs ->
      check_bool "type-rule message" true
        (List.exists (fun e -> contains e "operand types differ") errs)

let test_verify_phi_predecessor_messages () =
  let m =
    Resolve.parse_module
      {|
int %f() {
entry:
  br label %b1
b1:
  %x = phi int [ 0, %entry ], [ 1, %b2 ]
  ret int %x
b2:
  ret int 0
}
|}
  in
  (match Verify.verify_module m with
  | [] -> Alcotest.fail "phi with non-predecessor incoming must not verify"
  | errs ->
      check_bool "non-predecessor message" true
        (List.exists (fun e -> contains e "non-predecessor %b2") errs));
  let m2 =
    Resolve.parse_module
      {|
int %g(bool %c) {
entry:
  br bool %c, label %b1, label %b2
b1:
  br label %join
b2:
  br label %join
join:
  %x = phi int [ 0, %b1 ]
  ret int %x
}
|}
  in
  match Verify.verify_module m2 with
  | [] -> Alcotest.fail "phi missing an incoming must not verify"
  | errs ->
      check_bool "missing-incoming message" true
        (List.exists
           (fun e -> contains e "missing incoming for predecessor %b2")
           errs)

(* an invalid module, for exercising the dominance message and the
   pass-manager gate *)
let dominance_violation_module () =
  let m = Ir.mk_module () in
  let f =
    Ir.mk_func ~name:"g" ~return:Types.Int ~params:[ ("c", Types.Bool) ] ()
  in
  Ir.add_func m f;
  let e = Ir.mk_block ~name:"entry" () in
  let b1 = Ir.mk_block ~name:"b1" () in
  let b2 = Ir.mk_block ~name:"b2" () in
  List.iter (Ir.append_block f) [ e; b1; b2 ];
  let carg = Ir.Varg (List.hd f.Ir.fargs) in
  let def =
    Ir.mk_instr ~name:"x" (Ir.Binop Ir.Add)
      [| Ir.const_int Types.Int 1L; Ir.const_int Types.Int 2L |]
      Types.Int
  in
  Ir.append_instr e
    (Ir.mk_instr Ir.Br [| carg; Ir.Vblock b1; Ir.Vblock b2 |] Types.Void);
  Ir.append_instr b1 (Ir.mk_instr Ir.Ret [| Ir.Vreg def |] Types.Void);
  Ir.append_instr b2 def;
  Ir.append_instr b2 (Ir.mk_instr Ir.Ret [| Ir.Vreg def |] Types.Void);
  m

let test_verify_dominance_message () =
  match Verify.verify_module (dominance_violation_module ()) with
  | [] -> Alcotest.fail "dominance violation must not verify"
  | errs ->
      check_bool "dominance message" true
        (List.exists
           (fun e -> contains e "not dominated by its definition")
           errs)

let test_pass_broke_module () =
  (* a pipeline run over a module the verifier rejects must surface the
     offending pass and the verifier's messages, not die on Failure *)
  let m = dominance_violation_module () in
  match Transform.Passmgr.run_pass ~verify:true m "dce" with
  | _ -> Alcotest.fail "expected Pass_broke_module"
  | exception Transform.Passmgr.Pass_broke_module (name, errs) ->
      check_string "offending pass" "dce" name;
      check_bool "carries the verifier messages" true
        (List.exists
           (fun e -> contains e "not dominated by its definition")
           errs)

let suite =
  [
    Alcotest.test_case "uninit load" `Quick test_uninit_load;
    Alcotest.test_case "maybe-uninit load" `Quick test_maybe_uninit_load;
    Alcotest.test_case "initialized load clean" `Quick test_initialized_load_is_clean;
    Alcotest.test_case "oob access" `Quick test_oob_access;
    Alcotest.test_case "one-past-end gep allowed" `Quick test_one_past_end_gep_allowed;
    Alcotest.test_case "null deref" `Quick test_null_deref;
    Alcotest.test_case "null argument" `Quick test_null_arg;
    Alcotest.test_case "dangling pointer" `Quick test_dangling_pointer;
    Alcotest.test_case "div by zero" `Quick test_div_by_zero;
    Alcotest.test_case "unreachable block" `Quick test_unreachable_block;
    Alcotest.test_case "dead store" `Quick test_dead_store;
    Alcotest.test_case "unused result" `Quick test_unused_result;
    Alcotest.test_case "initializing callee" `Quick test_initializing_callee;
    Alcotest.test_case "unknown check rejected" `Quick test_unknown_check_rejected;
    Alcotest.test_case "summaries" `Quick test_summaries;
    Alcotest.test_case "alias phi same base" `Quick test_alias_phi_same_base;
    Alcotest.test_case "alias phi mixed bases" `Quick test_alias_phi_mixed_bases;
    Alcotest.test_case "alias phi cyclic" `Quick test_alias_phi_cyclic;
    Alcotest.test_case "deterministic order" `Quick test_deterministic_order;
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json unicode escapes" `Quick test_json_unicode_escapes;
    Alcotest.test_case "relation field" `Quick test_relation_field;
    Alcotest.test_case "verdict roundtrip" `Quick test_verdict_roundtrip;
    Alcotest.test_case "verdict strict reader" `Quick test_verdict_strict_reader;
    Alcotest.test_case "workloads lint clean" `Slow test_workloads_clean;
    Alcotest.test_case "verify type-rule message" `Quick test_verify_type_rule_message;
    Alcotest.test_case "verify phi messages" `Quick test_verify_phi_predecessor_messages;
    Alcotest.test_case "verify dominance message" `Quick test_verify_dominance_message;
    Alcotest.test_case "broken pass is reported" `Quick test_pass_broke_module;
  ]
