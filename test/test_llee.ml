(* LLEE execution-manager tests: JIT-on-demand, offline caching,
   timestamps, storage backends, profile collection, trace formation and
   relayout, and the profile round-trip. *)

open Llva

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let program =
  {|
declare void %print_int(int)

int %hot(int %n) {
entry:
  br label %loop
loop:
  %i = phi int [ 0, %entry ], [ %inext, %latch ]
  %acc = phi int [ 0, %entry ], [ %acc3, %latch ]
  %odd = rem int %i, 2
  %isodd = seteq int %odd, 1
  br bool %isodd, label %odd_path, label %even_path
odd_path:
  %a1 = add int %acc, %i
  br label %latch
even_path:
  %a2 = add int %acc, 1
  br label %latch
latch:
  %acc3 = phi int [ %a1, %odd_path ], [ %a2, %even_path ]
  %inext = add int %i, 1
  %done = setge int %inext, %n
  br bool %done, label %out, label %loop
out:
  ret int %acc3
}

int %cold_helper(int %x) {
entry:
  %r = mul int %x, 3
  ret int %r
}

int %main() {
entry:
  %h = call int %hot(int 50)
  call void %print_int(int %h)
  ret int %h
}
|}

let expected_result = Gen.run_interp (Gen.parse program)

(* unwrap a launch that must finish normally: [Llee.run] returns a
   structured outcome, and these tests expect a plain exit *)
let run_ok eng =
  match Llee.run eng with
  | Llee.Outcome.Exit c, out -> (c, out)
  | o, _ -> Alcotest.fail ("unexpected outcome: " ^ Llee.Outcome.to_string o)

let test_jit_no_storage () =
  (* no OS storage: every launch translates online (the DAISY/Crusoe
     situation) *)
  let eng = Llee.of_module ~target:Llee.X86 (Gen.parse program) in
  let r = run_ok eng in
  check_bool "result matches interp" true (r = expected_result);
  (* only functions actually called get translated: cold_helper is not *)
  check_int "two functions JITed" 2 eng.Llee.stats.Llee.translations;
  check_int "no cache hits" 0 eng.Llee.stats.Llee.cache_hits;
  check_bool "cycles counted" true
    (Int64.compare eng.Llee.stats.Llee.cycles 0L > 0)

let test_warm_cache () =
  let storage = Llee.Storage.in_memory () in
  let m = Gen.parse program in
  let cold = Llee.of_module ~storage ~target:Llee.X86 m in
  let r1 = run_ok cold in
  check_bool "cold run ok" true (r1 = expected_result);
  check_int "cold: translated" 2 cold.Llee.stats.Llee.translations;
  (* second launch of the same object code: all code comes from cache *)
  let warm = Llee.fresh_run cold in
  let r2 = run_ok warm in
  check_bool "warm run ok" true (r2 = expected_result);
  check_int "warm: no translations" 0 warm.Llee.stats.Llee.translations;
  check_int "warm: cache hits" 2 warm.Llee.stats.Llee.cache_hits

let test_offline_translation () =
  let storage = Llee.Storage.in_memory () in
  let m = Gen.parse program in
  let eng = Llee.of_module ~storage ~target:Llee.Sparc m in
  (* idle-time: translate everything without executing *)
  Llee.translate_offline eng;
  check_int "all three functions translated" 3 eng.Llee.stats.Llee.translations;
  check_bool "cache populated" true (storage.Llee.Storage.size () > 0);
  let launch = Llee.fresh_run eng in
  let r = run_ok launch in
  check_bool "runs from cache" true (r = expected_result);
  check_int "launch: zero translations" 0
    launch.Llee.stats.Llee.translations;
  check_int "launch: hits" 2 launch.Llee.stats.Llee.cache_hits

let test_stale_timestamp () =
  let storage = Llee.Storage.in_memory () in
  let m = Gen.parse program in
  let v1 = Llee.of_module ~storage ~timestamp:0.0 ~target:Llee.X86 m in
  ignore (Llee.run v1);
  (* "recompile" the program with a newer timestamp than any cache entry:
     entries written during v1 (logical clocks 1..) would be valid, so
     jump the program timestamp far ahead *)
  let v2 =
    Llee.of_module ~storage ~timestamp:1e9 ~target:Llee.X86
      (Gen.parse program)
  in
  ignore (Llee.run v2);
  check_int "stale entries retranslated" 2 v2.Llee.stats.Llee.translations;
  check_int "no stale hits" 0 v2.Llee.stats.Llee.cache_hits

let test_on_disk_storage () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "llee_cache_test" in
  let storage = Llee.Storage.on_disk ~dir in
  let m = Gen.parse program in
  let eng = Llee.of_module ~storage ~target:Llee.X86 m in
  let r1 = run_ok eng in
  check_bool "disk-cached run" true (r1 = expected_result);
  let warm = Llee.fresh_run eng in
  let r2 = run_ok warm in
  check_bool "warm disk run" true (r2 = expected_result);
  check_int "warm from disk" 0 warm.Llee.stats.Llee.translations;
  (* cleanup *)
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir)

let test_profile_collection () =
  let m = Gen.parse program in
  let prof, code, _ = Llee.Profile.collect m in
  check_bool "profiled run correct" true (code = fst expected_result);
  let f = Option.get (Ir.find_func m "hot") in
  let block name = List.find (fun (b : Ir.block) -> b.Ir.bname = name) f.Ir.fblocks in
  (* the loop executes 50 times: latch -> loop edge taken 49 times *)
  check_int "back edge count" 49
    (Llee.Profile.edge_count prof (block "latch") (block "loop"));
  check_int "odd path taken 25x" 25
    (Llee.Profile.edge_count prof (block "loop") (block "odd_path"));
  check_bool "latch hot" true (Llee.Profile.block_count prof (block "latch") >= 50);
  (* serialization round-trip *)
  let prof2 = Llee.Profile.deserialize (Llee.Profile.serialize prof) in
  check_int "serialized edge count" 49
    (Llee.Profile.edge_count prof2 (block "latch") (block "loop"))

let test_trace_formation () =
  let m = Gen.parse program in
  let prof, _, _ = Llee.Profile.collect m in
  let f = Option.get (Ir.find_func m "hot") in
  let traces = Llee.Trace.form_traces prof f in
  check_bool "at least one trace" true (traces <> []);
  let t = List.hd traces in
  check_bool "trace has >= 2 blocks" true (List.length t.Llee.Trace.blocks >= 2);
  (* the trace follows the hot loop, not the exit *)
  check_bool "trace stays in loop" true
    (List.for_all
       (fun (b : Ir.block) -> b.Ir.bname <> "out" || List.length t.Llee.Trace.blocks > 4)
       t.Llee.Trace.blocks)

let test_reoptimize_preserves_semantics () =
  let eng = Llee.of_module ~target:Llee.X86 (Gen.parse program) in
  let r1 = run_ok eng in
  let eng2, _moved = Llee.reoptimize eng in
  let r2 = run_ok eng2 in
  check_bool "same behaviour after relayout" true (r1 = r2);
  check_bool "verifies after relayout" true (Verify.verify_module eng2.Llee.m = [])

let test_reoptimize_helps_or_neutral () =
  (* trace relayout should never increase dynamic instruction count by
     more than a sliver, and usually reduces taken branches *)
  let eng = Llee.of_module ~target:Llee.Sparc (Gen.parse program) in
  ignore (Llee.run eng);
  let before = eng.Llee.stats.Llee.native_instrs in
  let eng2, _ = Llee.reoptimize eng in
  ignore (Llee.run eng2);
  let after = eng2.Llee.stats.Llee.native_instrs in
  check_bool
    (Printf.sprintf "dynamic instrs %Ld -> %Ld" before after)
    true
    (Int64.compare after (Int64.add before (Int64.div before 20L)) <= 0)

let test_smc_with_llee () =
  let src =
    {|
declare void %llva.smc.replace(int (int)*, int (int)*)
int %orig(int %x) {
entry:
  %r = add int %x, 1
  ret int %r
}
int %patched(int %x) {
entry:
  %r = add int %x, 100
  ret int %r
}
int %main() {
entry:
  %a = call int %orig(int 0)
  call void %llva.smc.replace(int (int)* %orig, int (int)* %patched)
  %b = call int %orig(int 0)
  %r = add int %a, %b
  ret int %r
}
|}
  in
  let eng = Llee.of_module ~target:Llee.X86 (Gen.parse src) in
  let code, _ = run_ok eng in
  check_int "patched applies to future calls" 101 code;
  check_bool "invalidation observed" true
    (eng.Llee.stats.Llee.invalidations >= 1)

let suite =
  [
    Alcotest.test_case "jit without storage" `Quick test_jit_no_storage;
    Alcotest.test_case "warm cache" `Quick test_warm_cache;
    Alcotest.test_case "offline translation" `Quick test_offline_translation;
    Alcotest.test_case "stale timestamp" `Quick test_stale_timestamp;
    Alcotest.test_case "on-disk storage" `Quick test_on_disk_storage;
    Alcotest.test_case "profile collection" `Quick test_profile_collection;
    Alcotest.test_case "trace formation" `Quick test_trace_formation;
    Alcotest.test_case "reoptimize semantics" `Quick
      test_reoptimize_preserves_semantics;
    Alcotest.test_case "reoptimize dynamic count" `Quick
      test_reoptimize_helps_or_neutral;
    Alcotest.test_case "smc with llee" `Quick test_smc_with_llee;
  ]

let test_corrupted_cache () =
  (* a corrupted or foreign cache entry must be treated as a miss, not
     crash the deserializer *)
  let storage = Llee.Storage.in_memory () in
  let eng = Llee.of_module ~storage ~target:Llee.X86 (Gen.parse program) in
  ignore (Llee.run eng);
  (* trash every cache entry *)
  let key f = Printf.sprintf "%s.%s.x86lite" eng.Llee.key f in
  List.iter
    (fun f -> storage.Llee.Storage.write (key f) "garbage bytes!")
    [ "main"; "hot" ];
  let again = Llee.fresh_run eng in
  let r = run_ok again in
  check_bool "still correct" true (r = expected_result);
  check_int "retranslated after corruption" 2
    again.Llee.stats.Llee.translations;
  check_int "no bogus hits" 0 again.Llee.stats.Llee.cache_hits;
  check_int "bad-magic entries counted" 2 again.Llee.stats.Llee.cache_corrupt

let test_truncated_marshal () =
  (* magic intact but the payload cut short: the frame checksum no longer
     matches, so the entry is quarantined (never re-read), retranslated,
     and the rewrite counts as a repair *)
  let storage = Llee.Storage.in_memory () in
  let eng = Llee.of_module ~storage ~target:Llee.X86 (Gen.parse program) in
  ignore (Llee.run eng);
  let key f = Printf.sprintf "%s.%s.x86lite" eng.Llee.key f in
  List.iter
    (fun f ->
      match storage.Llee.Storage.read (key f) with
      | Some e ->
          let d = e.Llee.Storage.data in
          storage.Llee.Storage.write (key f)
            (String.sub d 0 (String.length d - 8))
      | None -> Alcotest.fail ("missing cache entry for " ^ f))
    [ "main"; "hot" ];
  let again = Llee.fresh_run eng in
  let r = run_ok again in
  check_bool "still correct after truncation" true (r = expected_result);
  check_int "retranslated after truncation" 2 again.Llee.stats.Llee.translations;
  check_int "no bogus hits" 0 again.Llee.stats.Llee.cache_hits;
  check_int "checksum mismatches quarantined" 2
    again.Llee.stats.Llee.cache_quarantined;
  check_int "both entries repaired" 2 again.Llee.stats.Llee.cache_repaired;
  (* the repaired cache serves the next launch with no retranslation *)
  let healed = Llee.fresh_run eng in
  let r2 = run_ok healed in
  check_bool "healed cache correct" true (r2 = expected_result);
  check_int "healed: no translations" 0 healed.Llee.stats.Llee.translations;
  check_int "healed: nothing quarantined" 0
    healed.Llee.stats.Llee.cache_quarantined

let test_module_entry_fast_path () =
  (* offline translation writes a whole-module entry; a warm launch can
     run entirely from it even with every per-function entry gone *)
  let storage = Llee.Storage.in_memory () in
  let m = Gen.parse program in
  let eng = Llee.of_module ~storage ~target:Llee.X86 m in
  Llee.translate_offline eng;
  let key f = Printf.sprintf "%s.%s.x86lite" eng.Llee.key f in
  List.iter
    (fun f -> storage.Llee.Storage.delete (key f))
    [ "main"; "hot"; "cold_helper" ];
  let warm = Llee.fresh_run eng in
  let r = run_ok warm in
  check_bool "runs from module entry" true (r = expected_result);
  check_int "module entry: no translations" 0 warm.Llee.stats.Llee.translations;
  check_int "module entry: hits" 2 warm.Llee.stats.Llee.cache_hits

let test_module_entry_fallback () =
  (* ... and conversely: with the module entry corrupted, the launch
     falls back to the per-function entries *)
  let storage = Llee.Storage.in_memory () in
  let m = Gen.parse program in
  let eng = Llee.of_module ~storage ~target:Llee.X86 m in
  Llee.translate_offline eng;
  let module_key = Printf.sprintf "%s.#module#.x86lite" eng.Llee.key in
  storage.Llee.Storage.write module_key
    (Llee.frame_entry "not a marshalled module");
  let warm = Llee.fresh_run eng in
  let r = run_ok warm in
  check_bool "falls back to per-function entries" true (r = expected_result);
  check_int "fallback: no translations" 0 warm.Llee.stats.Llee.translations;
  check_int "fallback: per-function hits" 2 warm.Llee.stats.Llee.cache_hits;
  check_bool "module corruption counted" true
    (warm.Llee.stats.Llee.cache_corrupt >= 1);
  (* deleting the module entry entirely behaves the same *)
  storage.Llee.Storage.delete module_key;
  let warm2 = Llee.fresh_run eng in
  ignore (Llee.run warm2);
  check_int "deleted module entry: hits" 2 warm2.Llee.stats.Llee.cache_hits

let test_stale_module_entry () =
  (* a newer program timestamp evicts the whole-module entry as well as
     the per-function entries: everything retranslates *)
  let storage = Llee.Storage.in_memory () in
  let bytes = Llva.Encode.encode (Gen.parse program) in
  let v1 = Llee.load ~storage ~timestamp:0.0 ~target:Llee.X86 bytes in
  Llee.translate_offline v1;
  let v2 = Llee.load ~storage ~timestamp:1e9 ~target:Llee.X86 bytes in
  let r = run_ok v2 in
  check_bool "stale offline cache: correct" true (r = expected_result);
  check_int "stale offline cache: retranslated" 2
    v2.Llee.stats.Llee.translations;
  check_int "stale offline cache: no hits" 0 v2.Llee.stats.Llee.cache_hits;
  (* the stale module entry was deleted, not just skipped *)
  let module_key = Printf.sprintf "%s.#module#.x86lite" v2.Llee.key in
  check_bool "stale module entry evicted" true
    (storage.Llee.Storage.read module_key = None)

let test_parallel_offline_identical () =
  (* the Domain pool must leave byte-identical cache contents in the
     same entries as a sequential translation *)
  let bytes = Llva.Encode.encode (Gen.parse program) in
  let s_seq = Llee.Storage.in_memory () in
  let s_par = Llee.Storage.in_memory () in
  let e_seq = Llee.load ~storage:s_seq ~target:Llee.X86 bytes in
  let e_par = Llee.load ~storage:s_par ~target:Llee.X86 bytes in
  Llee.translate_offline ~domains:1 e_seq;
  Llee.translate_offline ~domains:4 e_par;
  check_int "same translation count" e_seq.Llee.stats.Llee.translations
    e_par.Llee.stats.Llee.translations;
  check_int "same cache size" (s_seq.Llee.Storage.size ())
    (s_par.Llee.Storage.size ());
  List.iter
    (fun f ->
      let key = Printf.sprintf "%s.%s.x86lite" e_seq.Llee.key f in
      match (s_seq.Llee.Storage.read key, s_par.Llee.Storage.read key) with
      | Some a, Some b ->
          check_bool ("identical entry for " ^ f) true
            (String.equal a.Llee.Storage.data b.Llee.Storage.data)
      | _ -> Alcotest.fail ("missing cache entry for " ^ f))
    [ "main"; "hot"; "cold_helper"; "#module#" ];
  (* the lint verdict entry must be byte-identical as well *)
  (match
     ( s_seq.Llee.Storage.read (Llee.lint_entry_name e_seq),
       s_par.Llee.Storage.read (Llee.lint_entry_name e_par) )
   with
  | Some a, Some b ->
      check_bool "identical verdict entry" true
        (String.equal a.Llee.Storage.data b.Llee.Storage.data)
  | _ -> Alcotest.fail "missing lint verdict entry");
  (* and the parallel cache actually runs *)
  let warm = Llee.fresh_run e_par in
  let r = run_ok warm in
  check_bool "parallel cache runs" true (r = expected_result);
  check_int "parallel cache: no translations" 0
    warm.Llee.stats.Llee.translations

let test_parallel_reoptimize () =
  (* reoptimize validates baseline vs candidate on two domains; the
     outcome must match semantics either way *)
  let storage = Llee.Storage.in_memory () in
  let eng = Llee.of_module ~storage ~target:Llee.X86 (Gen.parse program) in
  let r1 = run_ok eng in
  let eng2, _moved = Llee.reoptimize ~domains:2 eng in
  let r2 = run_ok eng2 in
  check_bool "same behaviour after parallel validation" true (r1 = r2)

(* ---------- cache identity regressions ---------- *)

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let fresh_tmp_dir tag =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s_%d" tag (Unix.getpid ()))
  in
  (match Sys.readdir dir with
  | files ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        files
  | exception Sys_error _ -> ());
  dir

let rm_rf_dir dir =
  (match Sys.readdir dir with
  | files ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        files
  | exception Sys_error _ -> ());
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

let test_module_named_function () =
  (* "__module__" is a perfectly legal LLVA identifier, so it must get its
     own cache entry, distinct from the reserved whole-module entry (which
     is '#'-framed exactly because identifiers cannot contain '#') *)
  let src =
    {|
int %__module__(int %x) {
entry:
  %r = add int %x, 41
  ret int %r
}
int %main() {
entry:
  %r = call int %__module__(int 1)
  ret int %r
}
|}
  in
  let m = Gen.parse src in
  let expected = Gen.run_interp m in
  let storage = Llee.Storage.in_memory () in
  let eng = Llee.of_module ~storage ~target:Llee.X86 m in
  Llee.translate_offline eng;
  check_bool "function and reserved entries are distinct" true
    (Llee.cache_name eng "__module__" <> Llee.module_entry_name eng);
  check_bool "function entry present" true
    (storage.Llee.Storage.read (Llee.cache_name eng "__module__") <> None);
  check_bool "module entry present" true
    (storage.Llee.Storage.read (Llee.module_entry_name eng) <> None);
  let warm = Llee.fresh_run eng in
  let r = run_ok warm in
  check_bool "runs with a function named __module__" true (r = expected);
  check_int "warm: nothing retranslated" 0 warm.Llee.stats.Llee.translations;
  check_int "warm: both functions from cache" 2 warm.Llee.stats.Llee.cache_hits;
  check_int "warm: nothing corrupt" 0 warm.Llee.stats.Llee.cache_corrupt

let test_storage_name_collision () =
  (* distinct cache names must never share an on-disk file: 'a$b' and
     'a_b' used to sanitize to the same path, silently serving one
     entry's native code for the other *)
  let dir = fresh_tmp_dir "llee_sanitize_test" in
  let storage = Llee.Storage.on_disk ~dir in
  storage.Llee.Storage.write "a$b" "dollar entry";
  storage.Llee.Storage.write "a_b" "underscore entry";
  (match storage.Llee.Storage.read "a$b" with
  | Some e -> check_string "a$b keeps its own data" "dollar entry" e.Llee.Storage.data
  | None -> Alcotest.fail "a$b entry lost");
  (match storage.Llee.Storage.read "a_b" with
  | Some e -> check_string "a_b keeps its own data" "underscore entry" e.Llee.Storage.data
  | None -> Alcotest.fail "a_b entry lost");
  (* deleting one must not delete the other *)
  storage.Llee.Storage.delete "a$b";
  check_bool "a$b gone" true (storage.Llee.Storage.read "a$b" = None);
  check_bool "a_b survives" true (storage.Llee.Storage.read "a_b" <> None);
  rm_rf_dir dir

let test_storage_write_midfail () =
  (* a write that fails after open (full disk: flushing to /dev/full
     raises on close_out) must close the fd and remove the tmp file *)
  if not (Sys.file_exists "/dev/full" && Sys.file_exists "/proc/self/fd")
  then ()
  else begin
    let dir = fresh_tmp_dir "llee_midfail_test" in
    let storage = Llee.Storage.on_disk ~dir in
    (* a successful write reveals the sanitized path the name maps to *)
    storage.Llee.Storage.write "victim" "original data";
    let file =
      match Sys.readdir dir with
      | [| f |] -> Filename.concat dir f
      | _ -> Alcotest.fail "expected exactly one cache file"
    in
    let tmp = Printf.sprintf "%s.%d.tmp" file (Unix.getpid ()) in
    let fd_count () = Array.length (Sys.readdir "/proc/self/fd") in
    let before = fd_count () in
    for _ = 1 to 5 do
      (* route the tmp file to /dev/full so the flush on close fails *)
      Unix.symlink "/dev/full" tmp;
      storage.Llee.Storage.write "victim" "replacement that never lands";
      check_bool "tmp file removed after failed write" true
        (not (Sys.file_exists tmp))
    done;
    check_int "no fd leaked across failed writes" before (fd_count ());
    (match storage.Llee.Storage.read "victim" with
    | Some e ->
        check_string "failed write left the old entry intact" "original data"
          e.Llee.Storage.data
    | None -> Alcotest.fail "victim entry lost");
    (* and the storage still works afterwards *)
    storage.Llee.Storage.write "victim" "new data";
    (match storage.Llee.Storage.read "victim" with
    | Some e -> check_string "storage usable after failure" "new data" e.Llee.Storage.data
    | None -> Alcotest.fail "post-failure write lost");
    rm_rf_dir dir
  end

(* ---------- lint-before-cache ---------- *)

(* provably wrong: uninit-load reports an error-severity finding *)
let poisoned_program =
  {|
int %main() {
entry:
  %x = alloca int
  %v = load int* %x
  ret int %v
}
|}

let test_lint_gate_blocks_poisoned_cache () =
  let storage = Llee.Storage.in_memory () in
  let m = Gen.parse poisoned_program in
  let eng = Llee.of_module ~storage ~target:Llee.X86 m in
  Llee.translate_offline eng;
  check_int "offline: lint ran once" 1 eng.Llee.stats.Llee.lint_runs;
  check_int "offline: rejected" 1 eng.Llee.stats.Llee.lint_rejected;
  check_int "offline: nothing translated" 0 eng.Llee.stats.Llee.translations;
  check_bool "no native function entry in storage" true
    (storage.Llee.Storage.read (Llee.cache_name eng "main") = None);
  check_bool "no whole-module entry in storage" true
    (storage.Llee.Storage.read (Llee.module_entry_name eng) = None);
  check_bool "verdict entry recorded" true
    (storage.Llee.Storage.read (Llee.lint_entry_name eng) <> None);
  (* a launch degrades to a reported failure, not a crash *)
  let launch = Llee.fresh_run eng in
  let outcome, out = Llee.run launch in
  check_bool "degrades to Cache_degraded" true
    (match outcome with Llee.Outcome.Cache_degraded _ -> true | _ -> false);
  check_int "lint-rejected exit code" Llee.lint_rejected_code
    (Llee.Outcome.exit_code outcome);
  check_bool "report names the finding" true (contains out "uninit-load");
  check_int "launch: verdict reused" 1 launch.Llee.stats.Llee.lint_skipped;
  check_int "launch: zero lint recomputation" 0 launch.Llee.stats.Llee.lint_runs;
  check_int "launch: rejected" 1 launch.Llee.stats.Llee.lint_rejected;
  check_int "launch: nothing translated" 0 launch.Llee.stats.Llee.translations;
  check_bool "still no native code cached" true
    (storage.Llee.Storage.read (Llee.cache_name eng "main") = None);
  (* without storage there is nothing to protect: the pure-JIT path does
     not lint at all (the DAISY/Crusoe situation is unchanged) *)
  let free = Llee.of_module ~target:Llee.X86 m in
  ignore (Llee.run free);
  check_int "no storage: no lint" 0 free.Llee.stats.Llee.lint_runs;
  check_int "no storage: not rejected" 0 free.Llee.stats.Llee.lint_rejected

let test_lint_warm_zero_recompute () =
  let storage = Llee.Storage.in_memory () in
  let cold = Llee.of_module ~storage ~target:Llee.X86 (Gen.parse program) in
  let r1 = run_ok cold in
  check_bool "clean module still runs" true (r1 = expected_result);
  check_int "cold: linted once" 1 cold.Llee.stats.Llee.lint_runs;
  check_int "cold: nothing reused" 0 cold.Llee.stats.Llee.lint_skipped;
  check_int "cold: not rejected" 0 cold.Llee.stats.Llee.lint_rejected;
  let warm = Llee.fresh_run cold in
  let r2 = run_ok warm in
  check_bool "warm run ok" true (r2 = expected_result);
  check_int "warm: zero lint recomputation" 0 warm.Llee.stats.Llee.lint_runs;
  check_int "warm: verdict reused" 1 warm.Llee.stats.Llee.lint_skipped;
  check_int "warm: not rejected" 0 warm.Llee.stats.Llee.lint_rejected

let test_lint_verdict_corrupt_or_stale () =
  let storage = Llee.Storage.in_memory () in
  let cold = Llee.of_module ~storage ~target:Llee.X86 (Gen.parse program) in
  ignore (Llee.run cold);
  let name = Llee.lint_entry_name cold in
  (* corrupt verdict: exactly one re-lint, and the verdict is re-recorded *)
  storage.Llee.Storage.write name "definitely not a verdict";
  let w1 = Llee.fresh_run cold in
  ignore (Llee.run w1);
  check_int "corrupt verdict: exactly one re-lint" 1 w1.Llee.stats.Llee.lint_runs;
  check_int "corrupt verdict: nothing reused" 0 w1.Llee.stats.Llee.lint_skipped;
  check_bool "corruption counted" true (w1.Llee.stats.Llee.cache_corrupt >= 1);
  let w2 = Llee.fresh_run cold in
  ignore (Llee.run w2);
  check_int "re-recorded verdict reused" 1 w2.Llee.stats.Llee.lint_skipped;
  check_int "re-recorded verdict: no recompute" 0 w2.Llee.stats.Llee.lint_runs;
  (* framed but version-bumped payload under the current entry name: the
     strict reader rejects it and the launch re-lints exactly once *)
  let bumped =
    Printf.sprintf
      "{\"lint_version\": %d, \"checks\": [], \"report\": {\"version\": 1, \
       \"errors\": 0, \"warnings\": 0, \"diagnostics\": []}}"
      (Check.Lint.version + 1)
  in
  storage.Llee.Storage.write name (Llee.frame_entry bumped);
  let w3 = Llee.fresh_run cold in
  ignore (Llee.run w3);
  check_int "version-bumped verdict: exactly one re-lint" 1
    w3.Llee.stats.Llee.lint_runs;
  check_int "version-bumped verdict: nothing reused" 0
    w3.Llee.stats.Llee.lint_skipped;
  (* a missing verdict entry behaves the same *)
  storage.Llee.Storage.delete name;
  let w4 = Llee.fresh_run cold in
  ignore (Llee.run w4);
  check_int "missing verdict: exactly one re-lint" 1 w4.Llee.stats.Llee.lint_runs

(* ---------- per-function verdicts: partial install ---------- *)

(* An error-severity finding confined to a function [main] never calls:
   the launch must proceed, clean functions must install and serve
   cached native code, and only the tainted function is barred. *)
let partial_program =
  {|
int %broken() {
entry:
  %x = alloca int
  %v = load int* %x
  ret int %v
}

int %helper(int %x) {
entry:
  %r = mul int %x, 2
  ret int %r
}

int %main() {
entry:
  %a = call int %helper(int 21)
  ret int %a
}
|}

let test_lint_partial_install () =
  let storage = Llee.Storage.in_memory () in
  let m = Gen.parse partial_program in
  let eng = Llee.of_module ~storage ~target:Llee.X86 m in
  let code, _ = run_ok eng in
  check_int "unreachable bug: program still runs" 42 code;
  check_int "not rejected" 0 eng.Llee.stats.Llee.lint_rejected;
  check_int "exactly the buggy function blocked" 1
    eng.Llee.stats.Llee.lint_blocked_funcs;
  check_bool "clean functions were translated" true
    (eng.Llee.stats.Llee.translations > 0);
  check_bool "clean native entry cached" true
    (storage.Llee.Storage.read (Llee.cache_name eng "helper") <> None);
  check_bool "blocked function never cached" true
    (storage.Llee.Storage.read (Llee.cache_name eng "broken") = None);
  (* warm launch: everything executed comes from cache, and the verdict
     itself is reused *)
  let warm = Llee.fresh_run eng in
  let code2, _ = run_ok warm in
  check_int "warm result identical" 42 code2;
  check_int "warm: zero translations" 0 warm.Llee.stats.Llee.translations;
  check_bool "warm: served from cache" true
    (warm.Llee.stats.Llee.cache_hits > 0);
  check_int "warm: verdict reused" 1 warm.Llee.stats.Llee.lint_skipped;
  check_int "warm: still blocked" 1 warm.Llee.stats.Llee.lint_blocked_funcs;
  check_bool "warm: blocked entry still absent" true
    (storage.Llee.Storage.read (Llee.cache_name eng "broken") = None);
  (* offline translation skips the blocked function too: neither a
     per-function entry nor a slot in the whole-module entry *)
  let s2 = Llee.Storage.in_memory () in
  let off = Llee.of_module ~storage:s2 ~target:Llee.X86 m in
  Llee.translate_offline off;
  check_bool "offline: clean entries written" true
    (s2.Llee.Storage.read (Llee.cache_name off "helper") <> None
    && s2.Llee.Storage.read (Llee.cache_name off "main") <> None);
  check_bool "offline: blocked entry not written" true
    (s2.Llee.Storage.read (Llee.cache_name off "broken") = None);
  check_bool "offline: module entry exists" true
    (s2.Llee.Storage.read (Llee.module_entry_name off) <> None)

(* the same finding, but now call-reachable from [main] through an
   intermediate hop: the whole launch must be refused (exit 125) *)
let test_lint_reachable_bug_refused () =
  let src =
    {|
int %broken() {
entry:
  %x = alloca int
  %v = load int* %x
  ret int %v
}

int %mid() {
entry:
  %r = call int %broken()
  ret int %r
}

int %main() {
entry:
  %a = call int %mid()
  ret int %a
}
|}
  in
  let storage = Llee.Storage.in_memory () in
  let eng = Llee.of_module ~storage ~target:Llee.X86 (Gen.parse src) in
  let outcome, _ = Llee.run eng in
  check_bool "reachable bug refuses the launch" true
    (match outcome with Llee.Outcome.Cache_degraded _ -> true | _ -> false);
  check_int "exit 125" Llee.lint_rejected_code (Llee.Outcome.exit_code outcome);
  check_int "rejected counted" 1 eng.Llee.stats.Llee.lint_rejected;
  check_int "nothing translated" 0 eng.Llee.stats.Llee.translations;
  check_bool "nothing cached" true
    (storage.Llee.Storage.read (Llee.cache_name eng "main") = None)

(* ---------- quarantine forensics (the cache doctor) ---------- *)

let test_cache_doctor () =
  let storage = Llee.Storage.in_memory () in
  let m = Gen.parse program in
  let eng = Llee.of_module ~storage ~target:Llee.X86 m in
  ignore (run_ok eng);
  check_bool "healthy cache: nothing to report" true
    (Llee.cache_doctor ~now:10.0 eng
    = [
        "cache doctor: no quarantined entries";
        "tv verdict: none recorded for this module/target";
      ]);
  (* damage one native entry; the next launch quarantines and repairs *)
  let cname = Llee.cache_name eng "hot" in
  (match storage.Llee.Storage.read cname with
  | None -> Alcotest.fail "expected a cached entry for %hot"
  | Some e ->
      let d = Bytes.of_string e.Llee.Storage.data in
      let k = Bytes.length d - 1 in
      Bytes.set d k (Char.chr (Char.code (Bytes.get d k) lxor 0xff));
      storage.Llee.Storage.write cname (Bytes.to_string d));
  let warm = Llee.fresh_run eng in
  ignore (run_ok warm);
  check_int "damaged entry quarantined" 1 warm.Llee.stats.Llee.cache_quarantined;
  (* the doctor sees it, the diff localizes the flipped byte *)
  let report = Llee.cache_doctor ~now:10.0 warm in
  check_bool "doctor counts one entry" true
    (List.exists (fun l -> contains l "1 quarantined entry") report);
  check_bool "doctor lists the name" true
    (List.exists (fun l -> contains l cname) report);
  let diff = Llee.diff_quarantined warm "hot" in
  check_bool "diff classifies the damage" true
    (List.exists (fun l -> contains l "checksum mismatch") diff);
  check_bool "diff finds the flipped byte" true
    (List.exists (fun l -> contains l "first difference at byte") diff);
  check_bool "no quarantined entry for a clean function" true
    (contains
       (String.concat "\n" (Llee.diff_quarantined warm "cold_helper"))
       "no quarantined entry");
  (* purge disposes of it; the live repaired entry survives *)
  check_int "purge removes one" 1 (Llee.purge_quarantined warm);
  check_bool "purged: doctor clean again" true
    (Llee.cache_doctor ~now:10.0 warm
    = [
        "cache doctor: no quarantined entries";
        "tv verdict: none recorded for this module/target";
      ]);
  check_bool "live entry untouched by purge" true
    (storage.Llee.Storage.read cname <> None);
  let healed = Llee.fresh_run warm in
  ignore (run_ok healed);
  check_int "healed launch translates nothing" 0
    healed.Llee.stats.Llee.translations

(* ---------- superoptimized peephole tables ---------- *)

let test_peep_cold_search_warm_load () =
  let storage = Llee.Storage.in_memory () in
  let m = Gen.parse program in
  let cold = Llee.of_module ~storage ~peephole:true ~target:Llee.X86 m in
  let r1 = run_ok cold in
  check_bool "peephole run correct" true (r1 = expected_result);
  check_int "cold: exactly one search" 1 cold.Llee.stats.Llee.peep_searches;
  check_int "cold: no table loads" 0 cold.Llee.stats.Llee.peep_table_loads;
  check_bool "table entry recorded" true
    (storage.Llee.Storage.read (Llee.peep_entry_name cold) <> None);
  let warm = Llee.fresh_run cold in
  let r2 = run_ok warm in
  check_bool "warm peephole run correct" true (r2 = expected_result);
  check_int "warm: zero searches" 0 warm.Llee.stats.Llee.peep_searches;
  check_int "warm: table loaded once" 1 warm.Llee.stats.Llee.peep_table_loads;
  check_int "warm: native code from cache" 0
    warm.Llee.stats.Llee.translations;
  (* observable behavior identical to the pass-off launch, and never
     slower under the cycle model *)
  let base = Llee.of_module ~target:Llee.X86 (Gen.parse program) in
  let r0 = run_ok base in
  check_bool "same behavior without the pass" true (r0 = r1);
  check_bool "cycles no worse than baseline" true
    (Int64.compare cold.Llee.stats.Llee.cycles base.Llee.stats.Llee.cycles
    <= 0);
  (* sparc back-end: same protocol *)
  let scold =
    Llee.of_module
      ~storage:(Llee.Storage.in_memory ())
      ~peephole:true ~target:Llee.Sparc (Gen.parse program)
  in
  let rs = run_ok scold in
  check_bool "sparc peephole run correct" true (rs = expected_result);
  check_int "sparc cold: exactly one search" 1
    scold.Llee.stats.Llee.peep_searches

let test_peep_entry_corrupt_stale_bumped () =
  let storage = Llee.Storage.in_memory () in
  let bytes = Llva.Encode.encode (Gen.parse program) in
  let cold = Llee.load ~storage ~peephole:true ~target:Llee.X86 bytes in
  ignore (run_ok cold);
  check_int "cold: one search" 1 cold.Llee.stats.Llee.peep_searches;
  let name = Llee.peep_entry_name cold in
  (* foreign bytes under the entry name: bad magic, counted as plain
     corruption, exactly one re-search *)
  storage.Llee.Storage.write name "definitely not a rewrite table";
  let w1 = Llee.fresh_run cold in
  ignore (run_ok w1);
  check_int "corrupt entry: exactly one re-search" 1
    w1.Llee.stats.Llee.peep_searches;
  check_int "corrupt entry: nothing loaded" 0
    w1.Llee.stats.Llee.peep_table_loads;
  check_bool "corruption counted" true (w1.Llee.stats.Llee.cache_corrupt >= 1);
  (* the re-search re-recorded the entry: next launch loads it *)
  let w2 = Llee.fresh_run cold in
  ignore (run_ok w2);
  check_int "re-recorded table reused" 1 w2.Llee.stats.Llee.peep_table_loads;
  check_int "re-recorded table: no re-search" 0
    w2.Llee.stats.Llee.peep_searches;
  (* checksum damage: quarantined, re-searched once, and the write-back
     of the fresh table counts as a repair *)
  (match storage.Llee.Storage.read name with
  | Some e ->
      let b = Bytes.of_string e.Llee.Storage.data in
      let i = Bytes.length b - 1 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF));
      storage.Llee.Storage.write name (Bytes.to_string b)
  | None -> Alcotest.fail "missing peep entry");
  let w3 = Llee.fresh_run cold in
  ignore (run_ok w3);
  check_int "damaged entry: exactly one re-search" 1
    w3.Llee.stats.Llee.peep_searches;
  check_bool "damaged entry quarantined" true
    (w3.Llee.stats.Llee.cache_quarantined >= 1);
  check_bool "damaged entry repaired" true
    (w3.Llee.stats.Llee.cache_repaired >= 1);
  (* a well-framed entry whose payload the strict table reader rejects
     (wrong table magic/version) is corruption, not a crash *)
  storage.Llee.Storage.write name (Llee.frame_entry "LLVAPEEP0\x00junk");
  let w4 = Llee.fresh_run cold in
  ignore (run_ok w4);
  check_int "version-bumped table: exactly one re-search" 1
    w4.Llee.stats.Llee.peep_searches;
  check_bool "version-bumped table counted corrupt" true
    (w4.Llee.stats.Llee.cache_corrupt >= 1);
  (* a newer program timestamp orphans the recorded table *)
  let v2 = Llee.load ~storage ~timestamp:1e9 ~peephole:true ~target:Llee.X86 bytes in
  ignore (run_ok v2);
  check_int "stale table: exactly one re-search" 1
    v2.Llee.stats.Llee.peep_searches;
  check_int "stale table: nothing loaded" 0
    v2.Llee.stats.Llee.peep_table_loads

let test_peep_table_determinism () =
  (* two independent cold launches must leave byte-identical #peep#
     entries AND byte-identical rewritten native code *)
  let mk () =
    let storage = Llee.Storage.in_memory () in
    let eng =
      Llee.of_module ~storage ~peephole:true ~target:Llee.X86
        (Gen.parse program)
    in
    ignore (run_ok eng);
    (storage, eng)
  in
  let s1, e1 = mk () in
  let s2, e2 = mk () in
  let data s name =
    Option.map (fun e -> e.Llee.Storage.data) (s.Llee.Storage.read name)
  in
  check_bool "identical #peep# entries" true
    (data s1 (Llee.peep_entry_name e1) = data s2 (Llee.peep_entry_name e2)
    && data s1 (Llee.peep_entry_name e1) <> None);
  (* cache_name includes the table fingerprint once the table is set *)
  List.iter
    (fun f ->
      check_bool
        ("identical native entry for " ^ f)
        true
        (data s1 (Llee.cache_name e1 f) = data s2 (Llee.cache_name e2 f)
        && data s1 (Llee.cache_name e1 f) <> None))
    [ "main"; "hot" ];
  (* and the fingerprint-suffixed identity is disjoint from the plain
     one: a pass-off launch of the same bytes misses this cache *)
  let plain = Llee.of_module ~target:Llee.X86 (Gen.parse program) in
  check_bool "peephole code keyed separately" true
    (Llee.cache_name e1 "main" <> Llee.cache_name plain "main")

let suite =
  suite
  @ [
      Alcotest.test_case "module-named function" `Quick
        test_module_named_function;
      Alcotest.test_case "storage name collision" `Quick
        test_storage_name_collision;
      Alcotest.test_case "storage mid-write failure" `Quick
        test_storage_write_midfail;
      Alcotest.test_case "lint gate blocks poisoned cache" `Quick
        test_lint_gate_blocks_poisoned_cache;
      Alcotest.test_case "lint warm zero recompute" `Quick
        test_lint_warm_zero_recompute;
      Alcotest.test_case "lint verdict corrupt or stale" `Quick
        test_lint_verdict_corrupt_or_stale;
      Alcotest.test_case "lint partial install" `Quick
        test_lint_partial_install;
      Alcotest.test_case "lint reachable bug refused" `Quick
        test_lint_reachable_bug_refused;
      Alcotest.test_case "cache doctor" `Quick test_cache_doctor;
      Alcotest.test_case "corrupted cache" `Quick test_corrupted_cache;
      Alcotest.test_case "truncated marshal" `Quick test_truncated_marshal;
      Alcotest.test_case "module entry fast path" `Quick
        test_module_entry_fast_path;
      Alcotest.test_case "module entry fallback" `Quick
        test_module_entry_fallback;
      Alcotest.test_case "stale module entry" `Quick test_stale_module_entry;
      Alcotest.test_case "parallel offline identical" `Quick
        test_parallel_offline_identical;
      Alcotest.test_case "parallel reoptimize" `Quick test_parallel_reoptimize;
      Alcotest.test_case "peep cold search warm load" `Quick
        test_peep_cold_search_warm_load;
      Alcotest.test_case "peep entry corrupt or stale" `Quick
        test_peep_entry_corrupt_stale_bumped;
      Alcotest.test_case "peep table determinism" `Quick
        test_peep_table_determinism;
    ]
