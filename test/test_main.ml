let () =
  Alcotest.run "llva"
    [
      ("types", Test_types.suite);
      ("ir", Test_ir.suite);
      ("parser", Test_parser.suite);
      ("interp", Test_interp.suite);
      ("encode", Test_encode.suite);
      ("analysis", Test_analysis.suite);
      ("transform", Test_transform.suite);
      ("backends", Test_backends.suite);
      ("llee", Test_llee.suite);
      ("outcome", Test_outcome.suite);
      ("storage", Test_storage.suite);
      ("minic", Test_minic.suite);
      ("workloads", Test_workloads.suite);
      ("vmem", Test_vmem.suite);
      ("codegen", Test_codegen.suite);
      ("lint", Test_lint.suite);
      ("ranges", Test_ranges.suite);
      ("tv", Test_tv.suite);
    ]
