(* Structured-outcome regressions: every engine must map guest traps and
   exhausted fuel budgets into [Llee.Outcome.t] instead of letting the
   engine's own OCaml exception escape. The `--engine x86` crash this
   guards against: the interpreter printed `trap: ...` and exited 134
   while both simulators took down the process with an uncaught
   [Sim.Trap]. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* The divisor is loaded from a global so llva-lint's constant-division
   check cannot see it: the module lints clean, then traps at runtime. *)
let trapping_program =
  {|
%zero = global int 0

int %div_by_global(int %n) {
entry:
  %z = load int* %zero
  %q = div int %n, %z
  ret int %q
}

int %main() {
entry:
  %r = call int %div_by_global(int 50)
  ret int %r
}
|}

let looping_program =
  {|
int %main() {
entry:
  br label %loop
loop:
  br label %loop
}
|}

(* all five engines as [unit -> Outcome.t] launchers *)
let engines ?fuel src =
  let m () = Gen.parse src in
  [
    ("interp", fun () -> fst (Llee.Outcome.run_main_interp ?fuel (m ())));
    ( "x86",
      fun () ->
        fst
          (Llee.Outcome.run_main_x86 ?fuel
             (X86lite.Compile.compile_module (m ()))) );
    ( "sparc",
      fun () ->
        fst
          (Llee.Outcome.run_main_sparc ?fuel
             (Sparclite.Compile.compile_module (m ()))) );
    ( "llee-x86",
      fun () -> fst (Llee.run ?fuel (Llee.of_module ~target:Llee.X86 (m ()))) );
    ( "llee-sparc",
      fun () ->
        fst (Llee.run ?fuel (Llee.of_module ~target:Llee.Sparc (m ()))) );
  ]

let test_trap_all_engines () =
  List.iter
    (fun (tag, launch) ->
      match launch () with
      | Llee.Outcome.Trapped { kind = Llee.Outcome.Division_by_zero; func; _ }
        as o ->
          check_string (tag ^ ": trap names the faulting function")
            "div_by_global" func;
          check_int (tag ^ ": trap exit code") 134 (Llee.Outcome.exit_code o)
      | o ->
          Alcotest.failf "%s: expected division trap, got %s" tag
            (Llee.Outcome.to_string o))
    (engines trapping_program)

let test_fuel_all_engines () =
  List.iter
    (fun (tag, launch) ->
      match launch () with
      | Llee.Outcome.Fuel_exhausted as o ->
          check_int (tag ^ ": fuel exit code") 124 (Llee.Outcome.exit_code o)
      | o ->
          Alcotest.failf "%s: expected fuel exhaustion, got %s" tag
            (Llee.Outcome.to_string o))
    (engines ~fuel:10_000 looping_program)

let test_normal_exit_all_engines () =
  let src = {|
int %main() {
entry:
  ret int 7
}
|} in
  List.iter
    (fun (tag, launch) ->
      match launch () with
      | Llee.Outcome.Exit 7 -> ()
      | o ->
          Alcotest.failf "%s: expected exit 7, got %s" tag
            (Llee.Outcome.to_string o))
    (engines src)

let test_exit_codes () =
  check_int "exit passthrough" 3 (Llee.Outcome.exit_code (Llee.Outcome.Exit 3));
  check_int "trap is 134" 134
    (Llee.Outcome.exit_code
       (Llee.Outcome.Trapped
          {
            kind = Llee.Outcome.Privilege_violation;
            engine = "interp";
            func = "main";
          }));
  check_int "fuel is 124" 124
    (Llee.Outcome.exit_code Llee.Outcome.Fuel_exhausted);
  check_int "degraded is 125" 125
    (Llee.Outcome.exit_code (Llee.Outcome.Cache_degraded { reason = "" }));
  check_int "degraded matches the lint gate's code" Llee.lint_rejected_code
    (Llee.Outcome.exit_code (Llee.Outcome.Cache_degraded { reason = "" }))

(* ---------- pool fault containment ---------- *)

exception Boom of int

let test_pool_mixed_exceptions () =
  (* a raising task aborts only itself: its siblings all run, the pool
     survives, and the earliest input's exception surfaces *)
  let ran = Array.make 8 false in
  let work i =
    ran.(i) <- true;
    if i mod 3 = 1 then raise (Boom i) else i * 10
  in
  (match Llee.Pool.map ~domains:4 work (List.init 8 Fun.id) with
  | _ -> Alcotest.fail "expected the earliest Boom to re-raise"
  | exception Boom i -> check_int "earliest failing input wins" 1 i);
  check_bool "every task still ran" true (Array.for_all Fun.id ran);
  (* same semantics sequentially: no early abort on the first raise *)
  let ran1 = Array.make 8 false in
  let work1 i =
    ran1.(i) <- true;
    if i mod 3 = 1 then raise (Boom i) else i * 10
  in
  (match Llee.Pool.map ~domains:1 work1 (List.init 8 Fun.id) with
  | _ -> Alcotest.fail "expected the earliest Boom to re-raise"
  | exception Boom i -> check_int "sequential: earliest input wins" 1 i);
  check_bool "sequential: every task still ran" true
    (Array.for_all Fun.id ran1);
  (* the pool is not poisoned: the next fan-out works normally *)
  let r = Llee.Pool.map ~domains:4 (fun i -> i + 1) (List.init 16 Fun.id) in
  check_bool "pool survives a raising batch" true
    (r = List.init 16 (fun i -> i + 1))

let test_pool_both_exceptions () =
  (match Llee.Pool.both ~domains:2 (fun () -> raise (Boom 1)) (fun () -> 2) with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i -> check_int "first thunk's exception" 1 i);
  let second_ran = ref false in
  (match
     Llee.Pool.both ~domains:2
       (fun () -> raise (Boom 1))
       (fun () ->
         second_ran := true;
         raise (Boom 2))
   with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i -> check_int "both raise: first wins" 1 i);
  check_bool "both raise: second thunk still ran" true !second_ran;
  let a, b = Llee.Pool.both ~domains:2 (fun () -> 1) (fun () -> 2) in
  check_int "both survives raising batches: fst" 1 a;
  check_int "both survives raising batches: snd" 2 b

let suite =
  [
    Alcotest.test_case "trap on all five engines" `Quick test_trap_all_engines;
    Alcotest.test_case "fuel exhaustion on all five engines" `Quick
      test_fuel_all_engines;
    Alcotest.test_case "normal exit on all five engines" `Quick
      test_normal_exit_all_engines;
    Alcotest.test_case "outcome exit codes" `Quick test_exit_codes;
    Alcotest.test_case "pool mixed exceptions" `Quick test_pool_mixed_exceptions;
    Alcotest.test_case "pool both exceptions" `Quick test_pool_both_exceptions;
  ]
