(* Tests for the interprocedural value-range analysis: interval algebra,
   binop transfer functions, branch-condition refinement along dominating
   edges, interprocedural argument/return summaries, must-deref argument
   summaries, bounded-widening termination over the whole workload suite,
   and the byte-for-byte determinism of the JSON lint report. *)

open Llva
module R = Check.Ranges

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let parse src =
  let m = Resolve.parse_module src in
  (match Verify.verify_module m with
  | [] -> ()
  | errs ->
      Alcotest.failf "fixture does not verify: %s" (String.concat "; " errs));
  m

let func m name =
  match
    List.find_opt (fun (f : Ir.func) -> f.Ir.fname = name) m.Ir.funcs
  with
  | Some f -> f
  | None -> Alcotest.failf "no function %%%s in fixture" name

(* The defining instruction of virtual register %name in %f. *)
let instr (f : Ir.func) name =
  let found = ref None in
  Ir.iter_instrs
    (fun (i : Ir.instr) -> if i.Ir.iname = name then found := Some i)
    f;
  match !found with
  | Some i -> i
  | None -> Alcotest.failf "no instruction %%%s in %%%s" name f.Ir.fname

let itv = Alcotest.testable (fun fmt r -> Format.fprintf fmt "%s" (R.to_string r)) ( = )
let check_itv = Alcotest.check itv

(* ---------- interval algebra ---------- *)

let test_algebra () =
  check_itv "join" (R.Itv (1L, 9L)) (R.join (R.Itv (1L, 4L)) (R.Itv (3L, 9L)));
  check_itv "join bot" (R.Itv (2L, 3L)) (R.join R.Bot (R.Itv (2L, 3L)));
  check_itv "meet" (R.Itv (3L, 4L)) (R.meet (R.Itv (1L, 4L)) (R.Itv (3L, 9L)));
  check_itv "meet disjoint" R.Bot (R.meet (R.Itv (1L, 2L)) (R.Itv (5L, 9L)));
  check_string "to_string singleton" "[7]" (R.to_string (R.Itv (7L, 7L)));
  check_string "to_string range" "[-1..8]" (R.to_string (R.Itv (-1L, 8L)));
  check_string "to_string bot" "bot" (R.to_string R.Bot);
  (* fit wraps an out-of-bounds interval to the type's full range *)
  check_itv "fit in-bounds"
    (R.Itv (0L, 200L))
    (R.fit Types.Int (R.Itv (0L, 200L)));
  check_itv "fit overflow"
    (R.top_of Types.Ubyte)
    (R.fit Types.Ubyte (R.Itv (200L, 300L)));
  check_bool "is_top full int" true
    (R.is_top Types.Int (R.Itv (-2147483648L, 2147483647L)));
  check_bool "is_top proper subrange" false (R.is_top Types.Int (R.Itv (0L, 5L)))

let test_binop_transfer () =
  let i l h = R.Itv (l, h) in
  check_itv "add" (i 5L 14L) (R.binop_ranges Types.Int Ir.Add (i 1L 4L) (i 4L 10L));
  check_itv "sub" (i (-9L) (-0L))
    (R.binop_ranges Types.Int Ir.Sub (i 1L 4L) (i 4L 10L));
  check_itv "mul" (i 4L 40L) (R.binop_ranges Types.Int Ir.Mul (i 1L 4L) (i 4L 10L));
  (* a zero divisor traps: it is cut from the divisor range, and a
     provably-zero divisor means the result is unreachable *)
  check_itv "div cuts zero divisor" (i 5L 100L)
    (R.binop_ranges Types.Int Ir.Div (i 100L 100L) (i 0L 20L));
  check_itv "div by provably zero" R.Bot
    (R.binop_ranges Types.Int Ir.Div (i 1L 4L) (i 0L 0L));
  check_itv "rem by provably zero" R.Bot
    (R.binop_ranges Types.Int Ir.Rem (i 1L 4L) (i 0L 0L));
  check_itv "rem bound" (i 0L 6L)
    (R.binop_ranges Types.Int Ir.Rem (i 0L 100L) (i 7L 7L));
  check_itv "and mask vs top" (i 0L 15L)
    (R.binop_ranges Types.Int Ir.And R.Top (i 15L 15L));
  check_itv "shl" (i 4L 32L)
    (R.binop_ranges Types.Int Ir.Shl (i 1L 2L) (i 2L 4L));
  check_itv "shr" (i 1L 8L)
    (R.binop_ranges Types.Int Ir.Shr (i 8L 16L) (i 1L 3L))

(* ---------- branch refinement along dominating edges ---------- *)

let refine_src =
  {|
int %f(int %x) {
entry:
  %small = setlt int %x, 10
  br bool %small, label %mid, label %big
mid:
  %pos = setgt int %x, 0
  br bool %pos, label %both, label %nonpos
both:
  %a = add int %x, 0
  ret int %a
nonpos:
  %b = sub int 0, %x
  ret int %b
big:
  %c = add int %x, 1
  ret int %c
}

int %main() {
entry:
  %r = call int %f(int 7)
  %r2 = call int %f(int -3)
  %r3 = call int %f(int 40)
  %s = add int %r, %r2
  %t = add int %s, %r3
  ret int %t
}
|}

let test_refinement () =
  let m = parse refine_src in
  let t = R.compute m in
  let f = func m "f" in
  let x = Ir.Varg (List.hd f.Ir.fargs) in
  (* flow-insensitive: the join of the three call sites *)
  check_itv "arg = join of call sites"
    (R.Itv (-3L, 40L))
    (R.arg_range t f (List.hd f.Ir.fargs));
  (* both guards dominate %both: -3 <= x, x < 10, x > 0 *)
  check_itv "doubly guarded" (R.Itv (1L, 9L)) (R.range_at t f (instr f "a") x);
  (* only the first guard (negated on the false edge) reaches %big *)
  check_itv "negated guard" (R.Itv (10L, 40L)) (R.range_at t f (instr f "c") x);
  check_itv "lower guard negated"
    (R.Itv (-3L, 0L))
    (R.range_at t f (instr f "b") x);
  check_bool "fixpoint" true (R.fixpoint_reached t)

(* ---------- interprocedural summaries ---------- *)

let interproc_src =
  {|
long %pick() {
entry:
  %a = add long 2, 4
  ret long %a
}

long %scale(long %k) {
entry:
  %r = mul long %k, 3
  ret long %r
}

long %main() {
entry:
  %i = call long %pick()
  %s = call long %scale(long %i)
  ret long %s
}
|}

let test_interprocedural () =
  let m = parse interproc_src in
  let t = R.compute m in
  let mainf = func m "main" in
  let scale = func m "scale" in
  check_itv "call reads callee return range"
    (R.Itv (6L, 6L))
    (R.instr_range t mainf (instr mainf "i"));
  check_itv "callee arg from call site"
    (R.Itv (6L, 6L))
    (R.arg_range t scale (List.hd scale.Ir.fargs));
  check_itv "return propagates through two levels"
    (R.Itv (18L, 18L))
    (R.ret_range t mainf);
  check_bool "fixpoint" true (R.fixpoint_reached t)

(* ---------- must-deref argument summaries ---------- *)

let test_must_derefs () =
  let m =
    parse
      {|
int %always(int* %p) {
entry:
  %v = load int* %p
  ret int %v
}

int %sometimes(int* %p, bool %c) {
entry:
  br bool %c, label %yes, label %no
yes:
  %v = load int* %p
  ret int %v
no:
  ret int 0
}

int %main() {
entry:
  %s = alloca int
  store int 1, int* %s
  %a = call int %always(int* %s)
  %b = call int %sometimes(int* %s, bool true)
  %r = add int %a, %b
  ret int %r
}
|}
  in
  let s = Check.Summaries.compute m in
  let arg0 f =
    Check.Summaries.arg_summary (Check.Summaries.func_summary s (func m f)) 0
  in
  check_bool "all-paths deref" true (arg0 "always").Check.Summaries.must_derefs;
  check_bool "all-paths deref also derefs" true
    (arg0 "always").Check.Summaries.derefs;
  check_bool "one-path deref is not must" false
    (arg0 "sometimes").Check.Summaries.must_derefs;
  check_bool "one-path deref still derefs" true
    (arg0 "sometimes").Check.Summaries.derefs

(* ---------- termination and determinism over the suite ---------- *)

(* Every workload must analyze to fixpoint inside the hard iteration
   budget — bounded widening has to terminate the loops, and the SCC
   round budget has to bound the interprocedural feedback. *)
let test_workloads_fixpoint () =
  List.iter
    (fun (w : Workloads.workload) ->
      let m = Workloads.compile_optimized ~level:2 w in
      let t = R.compute m in
      check_bool (w.Workloads.name ^ " reaches fixpoint") true
        (R.fixpoint_reached t);
      let budget =
        R.default_max_sweeps * List.length m.Ir.funcs * R.default_max_rounds
      in
      check_bool (w.Workloads.name ^ " within sweep budget") true
        (R.total_sweeps t <= budget);
      check_bool
        (w.Workloads.name ^ " bounded rounds")
        true
        (R.rounds t <= R.default_max_rounds))
    Workloads.all

(* Two independent analyses of the same program must render the same
   report, byte for byte — ranges, diagnostics, ordering, JSON. *)
let test_json_deterministic () =
  let w = Option.get (Workloads.find "ptrdist-anagram") in
  let report () =
    let m = Workloads.compile_optimized ~level:2 w in
    Check.Diag.render_json (Check.Lint.run ~checks:Check.Lint.check_ids m)
  in
  check_string "identical JSON across runs" (report ()) (report ());
  let table () =
    let m = Workloads.compile_optimized ~level:2 w in
    String.concat "\n" (R.render (R.compute m))
  in
  check_string "identical range table across runs" (table ()) (table ())

let test_render () =
  let m = parse interproc_src in
  let t = R.compute m in
  let all = String.concat "\n" (R.render t) in
  let has needle =
    let n = String.length needle and l = String.length all in
    let rec go i = i + n <= l && (String.sub all i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "render names the function" true (has "%scale");
  check_bool "render shows the arg range" true (has "[6]");
  check_bool "render shows the scaled return" true (has "[18]")

(* ---------- merge-point guard refinement ---------- *)

(* A dominating merge whose reachable incoming edges ALL carry
   constraints refines by the join of the per-edge refinements; one
   unconstrained edge makes the join a no-op. *)
let merge_src =
  {|
int %both(int %x) {
entry:
  %a = setlt int %x, 8
  br bool %a, label %merge, label %try2
try2:
  %b = setlt int %x, 12
  br bool %b, label %merge, label %out
merge:
  %u = add int %x, 0
  ret int %u
out:
  ret int 0
}

int %oneplain(int %x) {
entry:
  %a = setlt int %x, 8
  br bool %a, label %merge, label %mid
mid:
  br label %merge
merge:
  %u = add int %x, 0
  ret int %u
}

int %main() {
entry:
  %r1 = call int %both(int 3)
  %r2 = call int %both(int 30)
  %r3 = call int %oneplain(int 3)
  %r4 = call int %oneplain(int 30)
  %s1 = add int %r1, %r2
  %s2 = add int %r3, %r4
  %s = add int %s1, %s2
  ret int %s
}
|}

let test_merge_join () =
  let m = parse merge_src in
  let t = R.compute m in
  let both = func m "both" in
  let x = Ir.Varg (List.hd both.Ir.fargs) in
  check_itv "arg = join of call sites"
    (R.Itv (3L, 30L))
    (R.arg_range t both (List.hd both.Ir.fargs));
  (* both edges into %merge carry an upper bound: join [3,7] u [3,11] *)
  check_itv "all-edges-constrained merge refines"
    (R.Itv (3L, 11L))
    (R.range_at t both (instr both "u") x);
  (* an unconditional edge into the merge keeps the unrefined range *)
  let plain = func m "oneplain" in
  let xp = Ir.Varg (List.hd plain.Ir.fargs) in
  check_itv "unconstrained edge defeats the join"
    (R.Itv (3L, 30L))
    (R.range_at t plain (instr plain "u") xp);
  check_bool "fixpoint" true (R.fixpoint_reached t)

(* ---------- relational facts: guards, flow, summaries ---------- *)

let sum_src =
  {|
%cap = global long 6

long %sum(int* %buf, long %n) {
entry:
  br label %head
head:
  %i = phi long [ 0, %entry ], [ %inext, %body ]
  %acc = phi long [ 0, %entry ], [ %accn, %body ]
  %more = setlt long %i, %n
  br bool %more, label %body, label %done
body:
  %slot = getelementptr int* %buf, long %i
  %v = load int* %slot
  %vw = cast int %v to long
  %accn = add long %acc, %vw
  %inext = add long %i, 1
  br label %head
done:
  ret long %acc
}

long %main() {
entry:
  %n = load long* %cap
  %buf = alloca int, long %n
  %s = call long %sum(int* %buf, long %n)
  ret long %s
}
|}

let test_relational_queries () =
  let m =
    parse
      {|
int %g(int %x) {
entry:
  %lo = setge int %x, 2
  br bool %lo, label %mid, label %no
mid:
  %hi = setlt int %x, 5
  br bool %hi, label %yes, label %no
yes:
  %u = add int %x, 0
  ret int %u
no:
  ret int 0
}

int %main() {
entry:
  %r1 = call int %g(int 0)
  %r2 = call int %g(int 30)
  %r = add int %r1, %r2
  ret int %r
}
|}
  in
  let t = R.compute m in
  let g = func m "g" in
  let x = Ir.Varg (List.hd g.Ir.fargs) in
  let at = instr g "u" in
  (* both dominating guards land in the closed DBM as bounds against the
     zero node: x <= 0 + 4 and x >= 0 + 2 *)
  check_bool "guard upper bound" true
    (R.rel_upper_at t g at x R.zero_sym = Some 4L);
  check_bool "guard lower bound" true
    (R.rel_lower_at t g at x R.zero_sym = Some 2L);
  (* the flow equation u = x + 0 transports both bounds to %u *)
  let u = Ir.Vreg at in
  check_bool "flow equation upper" true
    (R.rel_upper_at t g at u R.zero_sym = Some 4L);
  check_bool "flow equation lower" true
    (R.rel_lower_at t g at u R.zero_sym = Some 2L)

(* The interprocedural round proves %n <= len(%buf) from the call site
   that passes an allocation together with its own element count, and the
   summary table republishes the fact per argument position. *)
let test_relational_summaries () =
  let m = parse sum_src in
  let t = R.compute m in
  let rel = R.export_relations t in
  check_bool "sum has a published bound" true
    (match List.assoc_opt "sum" rel with
    | Some [ (1, Check.Summaries.Ble_len (0, 0L)) ] -> true
    | _ -> false);
  let s = Check.Summaries.compute m in
  Check.Summaries.set_relations s rel;
  check_bool "arg_bounds republishes it" true
    (Check.Summaries.arg_bounds s (func m "sum")
    = [ (1, Check.Summaries.Ble_len (0, 0L)) ]);
  (* and the whole module lints clean: the loop access is range-proven *)
  check_int "sum module lints clean" 0
    (List.length (Check.Lint.run m))

(* ---------- straddle warnings: retired vs still suppressed ---------- *)

(* The DBM closes x <= y (var-var, useless to intervals because y's own
   interval is unbounded) with y <= 4 into x <= 4: the straddle warning
   the interval layer would emit is relationally retired. *)
let retired_src =
  {|
%t5 = global [5 x int] [ int 0, int 1, int 2, int 3, int 4 ]
%seed = global int 9

int %via(int %x, int %y) {
entry:
  %ycap = setlt int %y, 5
  br bool %ycap, label %a, label %out
a:
  %xle = setle int %x, %y
  br bool %xle, label %use, label %out
use:
  %xnn = setge int %x, 0
  br bool %xnn, label %go, label %out
go:
  %slot = getelementptr [5 x int]* %t5, long 0, int %x
  %v = load int* %slot
  ret int %v
out:
  ret int 0
}

int %main() {
entry:
  %u = load int* %seed
  %r1 = call int %via(int 0, int %u)
  %r2 = call int %via(int 7, int %u)
  %s = add int %r1, %r2
  ret int %s
}
|}

let oob_warnings diags =
  List.filter
    (fun (d : Check.Diag.t) ->
      d.Check.Diag.check = "oob-access" && d.Check.Diag.sev = Check.Diag.Warning)
    diags

let test_straddle_retired () =
  let m = parse retired_src in
  let diags = Check.Lint.run m in
  check_int "relationally proven: no findings at all" 0 (List.length diags);
  (* the proof really is relational: the interval at the access still
     straddles, the DBM bound does not *)
  let t = R.compute m in
  let via = func m "via" in
  let x = Ir.Varg (List.hd via.Ir.fargs) in
  let at = instr via "v" in
  check_itv "interval still straddles"
    (R.Itv (0L, 7L))
    (R.range_at t via at x);
  check_bool "closed DBM bound is tight" true
    (R.rel_upper_at t via at x R.zero_sym = Some 4L)

(* A masked index in [0..7] over a 4-element table: commensurate, precise,
   and no relational fact helps — the straddle warning must survive. *)
let test_straddle_survives () =
  let m =
    parse
      {|
%t4 = global [4 x int] [ int 1, int 2, int 3, int 4 ]
%seed = global int 9

int %clipped() {
entry:
  %v = load int* %seed
  %k = and int %v, 7
  %slot = getelementptr [4 x int]* %t4, long 0, int %k
  %x = load int* %slot
  ret int %x
}

int %main() {
entry:
  %r = call int %clipped()
  ret int %r
}
|}
  in
  check_int "masked straddle still warns" 1
    (List.length (oob_warnings (Check.Lint.run m)))

(* A widened loop counter over a fixed table spans billions of bytes: the
   commensurate-width gate suppressed that noise before the relational
   layer and must keep doing so. *)
let test_straddle_gate_kept () =
  let m =
    parse
      {|
%t4 = global [4 x int] [ int 1, int 2, int 3, int 4 ]
%seed = global int 9

int %scanner(int %n) {
entry:
  br label %head
head:
  %i = phi int [ 0, %entry ], [ %inext, %body ]
  %acc = phi int [ 0, %entry ], [ %accn, %body ]
  %go = setlt int %i, %n
  br bool %go, label %body, label %done
body:
  %slot = getelementptr [4 x int]* %t4, long 0, int %i
  %v = load int* %slot
  %accn = add int %acc, %v
  %inext = add int %i, 1
  br label %head
done:
  ret int %acc
}

int %main() {
entry:
  %v = load int* %seed
  %r = call int %scanner(int %v)
  ret int %r
}
|}
  in
  check_int "widened counter stays gate-suppressed" 0
    (List.length (oob_warnings (Check.Lint.run m)))

(* ---------- relational budget and determinism over the suite ---------- *)

let test_workloads_relational () =
  List.iter
    (fun (w : Workloads.workload) ->
      let m = Workloads.compile_optimized ~level:2 w in
      let t = R.compute m in
      check_bool (w.Workloads.name ^ " fixpoint with relations on") true
        (R.fixpoint_reached t);
      check_bool (w.Workloads.name ^ " within the DBM node budget") true
        (R.rel_within_budget t))
    Workloads.all

(* Two independent computations must render the same relational fact
   table, byte for byte. *)
let test_relations_deterministic () =
  let w = Option.get (Workloads.find "ptrdist-anagram") in
  let table () =
    let m = Workloads.compile_optimized ~level:2 w in
    String.concat "\n" (R.render_relations (R.compute m))
  in
  let a = table () in
  check_string "identical relations table across runs" a (table ());
  let m = Workloads.compile_optimized ~level:2 w in
  check_bool "the table is not vacuous" true (R.rel_fact_count (R.compute m) > 0)

let suite =
  [
    Alcotest.test_case "interval algebra" `Quick test_algebra;
    Alcotest.test_case "binop transfer" `Quick test_binop_transfer;
    Alcotest.test_case "branch refinement" `Quick test_refinement;
    Alcotest.test_case "interprocedural ranges" `Quick test_interprocedural;
    Alcotest.test_case "must-deref summaries" `Quick test_must_derefs;
    Alcotest.test_case "workloads reach fixpoint" `Slow test_workloads_fixpoint;
    Alcotest.test_case "deterministic reports" `Quick test_json_deterministic;
    Alcotest.test_case "range table rendering" `Quick test_render;
    Alcotest.test_case "merge-point refinement" `Quick test_merge_join;
    Alcotest.test_case "relational queries" `Quick test_relational_queries;
    Alcotest.test_case "relational summaries" `Quick test_relational_summaries;
    Alcotest.test_case "straddle relationally retired" `Quick
      test_straddle_retired;
    Alcotest.test_case "straddle survives" `Quick test_straddle_survives;
    Alcotest.test_case "straddle gate kept" `Quick test_straddle_gate_kept;
    Alcotest.test_case "workloads within relational budget" `Slow
      test_workloads_relational;
    Alcotest.test_case "deterministic relations table" `Quick
      test_relations_deterministic;
  ]
