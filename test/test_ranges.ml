(* Tests for the interprocedural value-range analysis: interval algebra,
   binop transfer functions, branch-condition refinement along dominating
   edges, interprocedural argument/return summaries, must-deref argument
   summaries, bounded-widening termination over the whole workload suite,
   and the byte-for-byte determinism of the JSON lint report. *)

open Llva
module R = Check.Ranges

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let parse src =
  let m = Resolve.parse_module src in
  (match Verify.verify_module m with
  | [] -> ()
  | errs ->
      Alcotest.failf "fixture does not verify: %s" (String.concat "; " errs));
  m

let func m name =
  match
    List.find_opt (fun (f : Ir.func) -> f.Ir.fname = name) m.Ir.funcs
  with
  | Some f -> f
  | None -> Alcotest.failf "no function %%%s in fixture" name

(* The defining instruction of virtual register %name in %f. *)
let instr (f : Ir.func) name =
  let found = ref None in
  Ir.iter_instrs
    (fun (i : Ir.instr) -> if i.Ir.iname = name then found := Some i)
    f;
  match !found with
  | Some i -> i
  | None -> Alcotest.failf "no instruction %%%s in %%%s" name f.Ir.fname

let itv = Alcotest.testable (fun fmt r -> Format.fprintf fmt "%s" (R.to_string r)) ( = )
let check_itv = Alcotest.check itv

(* ---------- interval algebra ---------- *)

let test_algebra () =
  check_itv "join" (R.Itv (1L, 9L)) (R.join (R.Itv (1L, 4L)) (R.Itv (3L, 9L)));
  check_itv "join bot" (R.Itv (2L, 3L)) (R.join R.Bot (R.Itv (2L, 3L)));
  check_itv "meet" (R.Itv (3L, 4L)) (R.meet (R.Itv (1L, 4L)) (R.Itv (3L, 9L)));
  check_itv "meet disjoint" R.Bot (R.meet (R.Itv (1L, 2L)) (R.Itv (5L, 9L)));
  check_string "to_string singleton" "[7]" (R.to_string (R.Itv (7L, 7L)));
  check_string "to_string range" "[-1..8]" (R.to_string (R.Itv (-1L, 8L)));
  check_string "to_string bot" "bot" (R.to_string R.Bot);
  (* fit wraps an out-of-bounds interval to the type's full range *)
  check_itv "fit in-bounds"
    (R.Itv (0L, 200L))
    (R.fit Types.Int (R.Itv (0L, 200L)));
  check_itv "fit overflow"
    (R.top_of Types.Ubyte)
    (R.fit Types.Ubyte (R.Itv (200L, 300L)));
  check_bool "is_top full int" true
    (R.is_top Types.Int (R.Itv (-2147483648L, 2147483647L)));
  check_bool "is_top proper subrange" false (R.is_top Types.Int (R.Itv (0L, 5L)))

let test_binop_transfer () =
  let i l h = R.Itv (l, h) in
  check_itv "add" (i 5L 14L) (R.binop_ranges Types.Int Ir.Add (i 1L 4L) (i 4L 10L));
  check_itv "sub" (i (-9L) (-0L))
    (R.binop_ranges Types.Int Ir.Sub (i 1L 4L) (i 4L 10L));
  check_itv "mul" (i 4L 40L) (R.binop_ranges Types.Int Ir.Mul (i 1L 4L) (i 4L 10L));
  (* a zero divisor traps: it is cut from the divisor range, and a
     provably-zero divisor means the result is unreachable *)
  check_itv "div cuts zero divisor" (i 5L 100L)
    (R.binop_ranges Types.Int Ir.Div (i 100L 100L) (i 0L 20L));
  check_itv "div by provably zero" R.Bot
    (R.binop_ranges Types.Int Ir.Div (i 1L 4L) (i 0L 0L));
  check_itv "rem by provably zero" R.Bot
    (R.binop_ranges Types.Int Ir.Rem (i 1L 4L) (i 0L 0L));
  check_itv "rem bound" (i 0L 6L)
    (R.binop_ranges Types.Int Ir.Rem (i 0L 100L) (i 7L 7L));
  check_itv "and mask vs top" (i 0L 15L)
    (R.binop_ranges Types.Int Ir.And R.Top (i 15L 15L));
  check_itv "shl" (i 4L 32L)
    (R.binop_ranges Types.Int Ir.Shl (i 1L 2L) (i 2L 4L));
  check_itv "shr" (i 1L 8L)
    (R.binop_ranges Types.Int Ir.Shr (i 8L 16L) (i 1L 3L))

(* ---------- branch refinement along dominating edges ---------- *)

let refine_src =
  {|
int %f(int %x) {
entry:
  %small = setlt int %x, 10
  br bool %small, label %mid, label %big
mid:
  %pos = setgt int %x, 0
  br bool %pos, label %both, label %nonpos
both:
  %a = add int %x, 0
  ret int %a
nonpos:
  %b = sub int 0, %x
  ret int %b
big:
  %c = add int %x, 1
  ret int %c
}

int %main() {
entry:
  %r = call int %f(int 7)
  %r2 = call int %f(int -3)
  %r3 = call int %f(int 40)
  %s = add int %r, %r2
  %t = add int %s, %r3
  ret int %t
}
|}

let test_refinement () =
  let m = parse refine_src in
  let t = R.compute m in
  let f = func m "f" in
  let x = Ir.Varg (List.hd f.Ir.fargs) in
  (* flow-insensitive: the join of the three call sites *)
  check_itv "arg = join of call sites"
    (R.Itv (-3L, 40L))
    (R.arg_range t f (List.hd f.Ir.fargs));
  (* both guards dominate %both: -3 <= x, x < 10, x > 0 *)
  check_itv "doubly guarded" (R.Itv (1L, 9L)) (R.range_at t f (instr f "a") x);
  (* only the first guard (negated on the false edge) reaches %big *)
  check_itv "negated guard" (R.Itv (10L, 40L)) (R.range_at t f (instr f "c") x);
  check_itv "lower guard negated"
    (R.Itv (-3L, 0L))
    (R.range_at t f (instr f "b") x);
  check_bool "fixpoint" true (R.fixpoint_reached t)

(* ---------- interprocedural summaries ---------- *)

let interproc_src =
  {|
long %pick() {
entry:
  %a = add long 2, 4
  ret long %a
}

long %scale(long %k) {
entry:
  %r = mul long %k, 3
  ret long %r
}

long %main() {
entry:
  %i = call long %pick()
  %s = call long %scale(long %i)
  ret long %s
}
|}

let test_interprocedural () =
  let m = parse interproc_src in
  let t = R.compute m in
  let mainf = func m "main" in
  let scale = func m "scale" in
  check_itv "call reads callee return range"
    (R.Itv (6L, 6L))
    (R.instr_range t mainf (instr mainf "i"));
  check_itv "callee arg from call site"
    (R.Itv (6L, 6L))
    (R.arg_range t scale (List.hd scale.Ir.fargs));
  check_itv "return propagates through two levels"
    (R.Itv (18L, 18L))
    (R.ret_range t mainf);
  check_bool "fixpoint" true (R.fixpoint_reached t)

(* ---------- must-deref argument summaries ---------- *)

let test_must_derefs () =
  let m =
    parse
      {|
int %always(int* %p) {
entry:
  %v = load int* %p
  ret int %v
}

int %sometimes(int* %p, bool %c) {
entry:
  br bool %c, label %yes, label %no
yes:
  %v = load int* %p
  ret int %v
no:
  ret int 0
}

int %main() {
entry:
  %s = alloca int
  store int 1, int* %s
  %a = call int %always(int* %s)
  %b = call int %sometimes(int* %s, bool true)
  %r = add int %a, %b
  ret int %r
}
|}
  in
  let s = Check.Summaries.compute m in
  let arg0 f =
    Check.Summaries.arg_summary (Check.Summaries.func_summary s (func m f)) 0
  in
  check_bool "all-paths deref" true (arg0 "always").Check.Summaries.must_derefs;
  check_bool "all-paths deref also derefs" true
    (arg0 "always").Check.Summaries.derefs;
  check_bool "one-path deref is not must" false
    (arg0 "sometimes").Check.Summaries.must_derefs;
  check_bool "one-path deref still derefs" true
    (arg0 "sometimes").Check.Summaries.derefs

(* ---------- termination and determinism over the suite ---------- *)

(* Every workload must analyze to fixpoint inside the hard iteration
   budget — bounded widening has to terminate the loops, and the SCC
   round budget has to bound the interprocedural feedback. *)
let test_workloads_fixpoint () =
  List.iter
    (fun (w : Workloads.workload) ->
      let m = Workloads.compile_optimized ~level:2 w in
      let t = R.compute m in
      check_bool (w.Workloads.name ^ " reaches fixpoint") true
        (R.fixpoint_reached t);
      let budget =
        R.default_max_sweeps * List.length m.Ir.funcs * R.default_max_rounds
      in
      check_bool (w.Workloads.name ^ " within sweep budget") true
        (R.total_sweeps t <= budget);
      check_bool
        (w.Workloads.name ^ " bounded rounds")
        true
        (R.rounds t <= R.default_max_rounds))
    Workloads.all

(* Two independent analyses of the same program must render the same
   report, byte for byte — ranges, diagnostics, ordering, JSON. *)
let test_json_deterministic () =
  let w = Option.get (Workloads.find "ptrdist-anagram") in
  let report () =
    let m = Workloads.compile_optimized ~level:2 w in
    Check.Diag.render_json (Check.Lint.run ~checks:Check.Lint.check_ids m)
  in
  check_string "identical JSON across runs" (report ()) (report ());
  let table () =
    let m = Workloads.compile_optimized ~level:2 w in
    String.concat "\n" (R.render (R.compute m))
  in
  check_string "identical range table across runs" (table ()) (table ())

let test_render () =
  let m = parse interproc_src in
  let t = R.compute m in
  let all = String.concat "\n" (R.render t) in
  let has needle =
    let n = String.length needle and l = String.length all in
    let rec go i = i + n <= l && (String.sub all i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "render names the function" true (has "%scale");
  check_bool "render shows the arg range" true (has "[6]");
  check_bool "render shows the scaled return" true (has "[18]")

let suite =
  [
    Alcotest.test_case "interval algebra" `Quick test_algebra;
    Alcotest.test_case "binop transfer" `Quick test_binop_transfer;
    Alcotest.test_case "branch refinement" `Quick test_refinement;
    Alcotest.test_case "interprocedural ranges" `Quick test_interprocedural;
    Alcotest.test_case "must-deref summaries" `Quick test_must_derefs;
    Alcotest.test_case "workloads reach fixpoint" `Slow test_workloads_fixpoint;
    Alcotest.test_case "deterministic reports" `Quick test_json_deterministic;
    Alcotest.test_case "range table rendering" `Quick test_render;
  ]
