(* Storage-layer fault semantics: missing vs unreadable entries,
   quarantine, concurrent Domain writers behind [Storage.locked],
   deterministic fault injection, and the bounded retry decorator. *)

module Storage = Llee.Storage

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let fresh_tmp_dir tag =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s_%d" tag (Unix.getpid ()))
  in
  (match Sys.readdir dir with
  | files ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        files
  | exception Sys_error _ -> ());
  dir

let rm_rf_dir dir =
  (match Sys.readdir dir with
  | files ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        files
  | exception Sys_error _ -> ());
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

let test_missing_vs_unreadable () =
  let dir = fresh_tmp_dir "llee_unreadable_test" in
  let s = Storage.on_disk ~dir in
  (* a missing entry is an ordinary miss: no exception, nothing counted *)
  check_bool "missing entry reads as None" true (s.Storage.read "absent" = None);
  check_int "missing entry not counted unreadable" 0
    s.Storage.counters.Storage.unreadable;
  (* an entry that exists but cannot be opened as a file (a directory
     squatting on its path) is the transient class, and is counted *)
  s.Storage.write "victim" "payload";
  let file =
    match Sys.readdir dir with
    | [| f |] -> Filename.concat dir f
    | _ -> Alcotest.fail "expected exactly one cache file"
  in
  Sys.remove file;
  Unix.mkdir file 0o755;
  (match s.Storage.read "victim" with
  | exception Storage.Transient _ -> ()
  | Some _ -> Alcotest.fail "unreadable entry served data"
  | None -> Alcotest.fail "unreadable entry conflated with a missing one");
  check_int "unreadable entry counted" 1 s.Storage.counters.Storage.unreadable;
  Unix.rmdir file;
  (* storage still works afterwards *)
  s.Storage.write "victim" "recovered";
  (match s.Storage.read "victim" with
  | Some e -> check_string "recovered" "recovered" e.Storage.data
  | None -> Alcotest.fail "post-recovery read missed");
  rm_rf_dir dir

let test_quarantine_on_disk () =
  let dir = fresh_tmp_dir "llee_quarantine_test" in
  let s = Storage.on_disk ~dir in
  s.Storage.write "rotten" "damaged bytes";
  let live = s.Storage.size () in
  check_bool "entry counted live" true (live > 0);
  s.Storage.quarantine "rotten";
  (* moved aside: never re-read, excluded from the live size, but kept on
     disk for post-mortem inspection *)
  check_bool "quarantined entry never re-read" true
    (s.Storage.read "rotten" = None);
  check_int "quarantined bytes excluded from size" 0 (s.Storage.size ());
  let aside =
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f -> Filename.check_suffix f ".quarantined")
  in
  check_int "one quarantined file kept" 1 (List.length aside);
  (* a repair write lands under the original name without disturbing the
     quarantined copy *)
  s.Storage.write "rotten" "repaired bytes";
  (match s.Storage.read "rotten" with
  | Some e -> check_string "repair landed" "repaired bytes" e.Storage.data
  | None -> Alcotest.fail "repair write lost");
  check_int "quarantined copy untouched" 1
    (Array.to_list (Sys.readdir dir)
    |> List.filter (fun f -> Filename.check_suffix f ".quarantined")
    |> List.length);
  (* quarantining a missing entry is a no-op, not an error *)
  s.Storage.quarantine "never-existed";
  rm_rf_dir dir

let test_quarantine_in_memory () =
  let s = Storage.in_memory () in
  s.Storage.write "rotten" "damaged bytes";
  s.Storage.quarantine "rotten";
  check_bool "quarantined entry never re-read" true
    (s.Storage.read "rotten" = None);
  check_int "quarantined bytes excluded from size" 0 (s.Storage.size ());
  s.Storage.write "rotten" "repaired bytes";
  match s.Storage.read "rotten" with
  | Some e -> check_string "repair landed" "repaired bytes" e.Storage.data
  | None -> Alcotest.fail "repair write lost"

(* The forensics API: list, read-back and purge of the moved-aside
   entries, on both concrete backends and through [locked]. *)
let forensics_exercise (s : Storage.t) =
  check_bool "empty cache lists nothing" true (s.Storage.list_quarantined () = []);
  s.Storage.write "alpha" "alpha bytes";
  s.Storage.write "beta" "beta bytes!";
  s.Storage.quarantine "alpha";
  s.Storage.quarantine "beta";
  let qs = s.Storage.list_quarantined () in
  check_int "both quarantined entries listed" 2 (List.length qs);
  check_bool "sizes reported" true
    (List.for_all (fun (_, _, size) -> size = 11) qs);
  check_bool "listing is sorted" true (qs = List.sort compare qs);
  (* read-back by the original name, raw bytes intact *)
  (match s.Storage.read_quarantined "alpha" with
  | Some e -> check_string "raw bytes preserved" "alpha bytes" e.Storage.data
  | None -> Alcotest.fail "quarantined entry unreadable");
  check_bool "absent name reads as None" true
    (s.Storage.read_quarantined "gamma" = None);
  (* a live entry must not shadow or be confused with the aside copy *)
  s.Storage.write "alpha" "repaired!!!";
  (match s.Storage.read_quarantined "alpha" with
  | Some e ->
      check_string "repair does not disturb the aside copy" "alpha bytes"
        e.Storage.data
  | None -> Alcotest.fail "aside copy lost after repair");
  check_int "purge removes them all" 2 (s.Storage.purge_quarantined ());
  check_bool "purged: nothing listed" true (s.Storage.list_quarantined () = []);
  check_bool "purged: nothing readable" true
    (s.Storage.read_quarantined "alpha" = None);
  check_int "second purge is a no-op" 0 (s.Storage.purge_quarantined ());
  (* the live, repaired entry survives the purge *)
  match s.Storage.read "alpha" with
  | Some e -> check_string "live entry survives purge" "repaired!!!" e.Storage.data
  | None -> Alcotest.fail "purge destroyed a live entry"

let test_forensics_in_memory () = forensics_exercise (Storage.in_memory ())

let test_forensics_on_disk () =
  let dir = fresh_tmp_dir "llee_forensics_test" in
  forensics_exercise (Storage.on_disk ~dir);
  rm_rf_dir dir

let test_forensics_locked () =
  forensics_exercise (Storage.locked (Storage.in_memory ()))

let test_forensics_none () =
  let s = Storage.none in
  check_bool "none lists nothing" true (s.Storage.list_quarantined () = []);
  check_bool "none reads nothing" true (s.Storage.read_quarantined "x" = None);
  check_int "none purges nothing" 0 (s.Storage.purge_quarantined ())

let test_locked_concurrent_writers () =
  (* several Domains hammering one [locked] in-memory storage: every
     entry must come back whole (no torn interleavings), no write may be
     lost, and warm reads must be byte-identical to what was written *)
  let s = Storage.locked (Storage.in_memory ()) in
  let writers = 4 and entries = 32 in
  let payload w k =
    (* big enough that a torn interleaving would be detectable *)
    String.concat "-"
      (List.init 64 (fun i -> Printf.sprintf "w%d.e%d.%d" w k i))
  in
  let work w =
    for k = 0 to entries - 1 do
      s.Storage.write (Printf.sprintf "shared.%d" k) (payload w k);
      s.Storage.write (Printf.sprintf "own.%d.%d" w k) (payload w k);
      ignore (s.Storage.read (Printf.sprintf "shared.%d" ((k + w) mod entries)));
      ignore (s.Storage.size ())
    done;
    w
  in
  let ids = Llee.Pool.map ~domains:writers work (List.init writers Fun.id) in
  check_bool "all writers finished" true (ids = List.init writers Fun.id);
  (* private entries: byte-identical to what their writer stored *)
  for w = 0 to writers - 1 do
    for k = 0 to entries - 1 do
      match s.Storage.read (Printf.sprintf "own.%d.%d" w k) with
      | Some e ->
          if not (String.equal e.Storage.data (payload w k)) then
            Alcotest.failf "torn or lost entry own.%d.%d" w k
      | None -> Alcotest.failf "lost write own.%d.%d" w k
    done
  done;
  (* contended entries: whole payload from exactly one of the writers *)
  for k = 0 to entries - 1 do
    match s.Storage.read (Printf.sprintf "shared.%d" k) with
    | Some e ->
        let ok =
          List.exists
            (fun w -> String.equal e.Storage.data (payload w k))
            (List.init writers Fun.id)
        in
        if not ok then Alcotest.failf "torn entry shared.%d" k
    | None -> Alcotest.failf "lost entry shared.%d" k
  done

let test_locked_concurrent_disk_writers () =
  (* same discipline on the on-disk backend: atomic tempfile + rename
     under a mutex must never leave torn or lost entries *)
  let dir = fresh_tmp_dir "llee_locked_disk_test" in
  let s = Storage.locked (Storage.on_disk ~dir) in
  let writers = 4 and entries = 8 in
  let payload w k =
    String.concat "-" (List.init 64 (fun i -> Printf.sprintf "w%d.e%d.%d" w k i))
  in
  let work w =
    for k = 0 to entries - 1 do
      s.Storage.write (Printf.sprintf "shared.%d" k) (payload w k);
      ignore (s.Storage.read (Printf.sprintf "shared.%d" ((k + w) mod entries)))
    done;
    w
  in
  ignore (Llee.Pool.map ~domains:writers work (List.init writers Fun.id));
  for k = 0 to entries - 1 do
    match s.Storage.read (Printf.sprintf "shared.%d" k) with
    | Some e ->
        let ok =
          List.exists
            (fun w -> String.equal e.Storage.data (payload w k))
            (List.init writers Fun.id)
        in
        if not ok then Alcotest.failf "torn disk entry shared.%d" k
    | None -> Alcotest.failf "lost disk entry shared.%d" k
  done;
  rm_rf_dir dir

let test_faulty_deterministic () =
  (* the same seed over the same operation sequence injects the same
     faults — the property the chaos suite's exact assertions rest on *)
  let run seed =
    let cfg =
      {
        Storage.fault_seed = seed;
        read_corrupt = 0.3;
        write_torn = 0.3;
        write_fail = 0.1;
        transient = 0.2;
      }
    in
    let s, fc = Storage.faulty cfg (Storage.in_memory ()) in
    let payload k = String.concat "" (List.init 40 (fun _ -> string_of_int k)) in
    for k = 0 to 63 do
      (try s.Storage.write (Printf.sprintf "e%d" k) (payload k)
       with Storage.Transient _ | Sys_error _ -> ());
      try ignore (s.Storage.read (Printf.sprintf "e%d" (k / 2)))
      with Storage.Transient _ -> ()
    done;
    ( fc.Storage.corrupt_reads,
      fc.Storage.torn_writes,
      fc.Storage.failed_writes,
      fc.Storage.transient_faults,
      fc.Storage.damaged_serves )
  in
  let a = run 42 and b = run 42 and c = run 43 in
  check_bool "same seed, same faults" true (a = b);
  check_bool "faults actually injected" true
    (let cr, tw, fw, tr, _ = a in
     cr > 0 && tw > 0 && fw > 0 && tr > 0);
  check_bool "different seed, different faults" true (a <> c)

let test_faulty_damage_tracking () =
  (* a torn write marks the name damaged until a whole write replaces it;
     quarantining is always reliable and clears the mark *)
  let cfg =
    { Storage.no_faults with Storage.fault_seed = 7; write_torn = 1.0 }
  in
  let s, fc = Storage.faulty cfg (Storage.in_memory ()) in
  let data = String.make 64 'x' in
  s.Storage.write "entry" data;
  check_int "torn write counted" 1 fc.Storage.torn_writes;
  (match s.Storage.read "entry" with
  | Some e -> check_bool "prefix stored" true (String.length e.Storage.data < 64)
  | None -> Alcotest.fail "torn write lost entirely");
  check_int "damaged serve counted" 1 fc.Storage.damaged_serves;
  check_bool "damage attributed to the name" true
    (Hashtbl.find_opt fc.Storage.damaged_names "entry" = Some 1);
  s.Storage.quarantine "entry";
  check_bool "quarantine is reliable under faults" true
    (s.Storage.read "entry" = None);
  check_int "no damaged serve for a quarantined entry" 1
    fc.Storage.damaged_serves

let test_with_retry () =
  (* transient faults are absorbed by bounded retries; the permanent
     class passes straight through *)
  let calls = ref 0 in
  let base = Storage.in_memory () in
  base.Storage.write "entry" "payload";
  let flaky =
    {
      base with
      Storage.read =
        (fun name ->
          incr calls;
          if !calls <= 2 then Storage.Transient "flaky" |> raise
          else base.Storage.read name);
    }
  in
  let s = Storage.with_retry ~attempts:5 ~backoff:0.0 flaky in
  (match s.Storage.read "entry" with
  | Some e -> check_string "retried through" "payload" e.Storage.data
  | None -> Alcotest.fail "retry lost the entry");
  check_int "two transient faults absorbed" 3 !calls;
  check_int "retries counted" 2 s.Storage.counters.Storage.retried;
  (* exhausted attempts re-raise the transient fault *)
  let always =
    {
      base with
      Storage.read = (fun _ -> raise (Storage.Transient "always"));
    }
  in
  let s2 = Storage.with_retry ~attempts:3 ~backoff:0.0 always in
  (match s2.Storage.read "entry" with
  | exception Storage.Transient _ -> ()
  | _ -> Alcotest.fail "expected Transient after exhausted retries");
  (* permanent failures are not retried *)
  let permanent_calls = ref 0 in
  let permanent =
    {
      base with
      Storage.write =
        (fun _ _ ->
          incr permanent_calls;
          raise (Sys_error "disk on fire"));
    }
  in
  let s3 = Storage.with_retry ~attempts:5 ~backoff:0.0 permanent in
  (match s3.Storage.write "entry" "data" with
  | exception Sys_error _ -> ()
  | () -> Alcotest.fail "expected Sys_error to propagate");
  check_int "permanent failure not retried" 1 !permanent_calls

let suite =
  [
    Alcotest.test_case "missing vs unreadable" `Quick test_missing_vs_unreadable;
    Alcotest.test_case "quarantine on disk" `Quick test_quarantine_on_disk;
    Alcotest.test_case "quarantine in memory" `Quick test_quarantine_in_memory;
    Alcotest.test_case "forensics in memory" `Quick test_forensics_in_memory;
    Alcotest.test_case "forensics on disk" `Quick test_forensics_on_disk;
    Alcotest.test_case "forensics through locked" `Quick test_forensics_locked;
    Alcotest.test_case "forensics on none" `Quick test_forensics_none;
    Alcotest.test_case "locked concurrent writers" `Quick
      test_locked_concurrent_writers;
    Alcotest.test_case "locked concurrent disk writers" `Quick
      test_locked_concurrent_disk_writers;
    Alcotest.test_case "faulty storage is deterministic" `Quick
      test_faulty_deterministic;
    Alcotest.test_case "faulty damage tracking" `Quick
      test_faulty_damage_tracking;
    Alcotest.test_case "with_retry" `Quick test_with_retry;
  ]
