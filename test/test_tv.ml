(* Regressions for the Eval semantics corners the translation-validation
   campaign flushed out, plus unit coverage of the lockstep checker
   itself.

   Each numeric fix has a test that fails on the pre-fix semantics:
   - IEEE-754 unordered NaN comparisons (every relation but Ne false);
   - shift amounts reduced modulo the operand's declared width, not a
     blanket [land 63];
   - signed INT_MIN / -1 division and remainder trapping as an
     arithmetic overflow (exit 134) on all five engines;
   - cast corners: fp->int out-of-range and NaN, float->pointer
     contained by [Outcome.protect], bool and pointer round-trips. *)

open Llva

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* run a program on all five engines and require one shared observable *)
let all_engines_agree tag src =
  let m = Gen.parse src in
  (match Gen.divergence m with
  | None -> ()
  | Some report -> Alcotest.failf "%s: engines diverge:\n%s" tag report);
  match Gen.engine_results m with
  | (_, o, _) :: _ -> o
  | [] -> assert false

(* ---- IEEE-754 unordered comparisons ---- *)

let test_nan_compare_eval () =
  List.iter
    (fun ty ->
      let n = Eval.F (ty, Float.nan) in
      let one = Eval.F (ty, 1.0) in
      let bool_of v = match v with Eval.B b -> b | _ -> assert false in
      List.iter
        (fun (cmp, name) ->
          check_bool
            (Printf.sprintf "%s nan cmp nan" name)
            (cmp = Ir.Ne)
            (bool_of (Eval.compare_scalars ty cmp n n));
          check_bool
            (Printf.sprintf "%s nan cmp 1.0" name)
            (cmp = Ir.Ne)
            (bool_of (Eval.compare_scalars ty cmp n one));
          check_bool
            (Printf.sprintf "%s 1.0 cmp nan" name)
            (cmp = Ir.Ne)
            (bool_of (Eval.compare_scalars ty cmp one n)))
        [
          (Ir.Eq, "eq"); (Ir.Ne, "ne"); (Ir.Lt, "lt");
          (Ir.Le, "le"); (Ir.Gt, "gt"); (Ir.Ge, "ge");
        ];
      (* ordered operands still compare as before *)
      check_bool "1.0 lt 2.0" true
        (bool_of (Eval.compare_scalars ty Ir.Lt one (Eval.F (ty, 2.0)))))
    [ Types.Float; Types.Double ]

(* NaN is manufactured at runtime (0.0 / 0.0 through a global) so no
   front-end folding can hide the comparison from the engines. *)
let nan_compare_program =
  {|
%zero = global double 0.0

int %main() {
entry:
  %z = load double* %zero
  %n = div double %z, %z
  %eq = seteq double %n, %n
  %ne = setne double %n, %n
  %lt = setlt double %n, %z
  %ge = setge double %n, %z
  %a = cast bool %eq to int
  %b = cast bool %ne to int
  %c = cast bool %lt to int
  %d = cast bool %ge to int
  %b2 = mul int %b, 2
  %c2 = mul int %c, 4
  %d2 = mul int %d, 8
  %s1 = add int %a, %b2
  %s2 = add int %s1, %c2
  %s3 = add int %s2, %d2
  ret int %s3
}
|}

let test_nan_compare_engines () =
  match all_engines_agree "nan compare" nan_compare_program with
  | Llee.Outcome.Exit c -> check_int "only ne holds on NaN" 2 c
  | o -> Alcotest.failf "unexpected outcome: %s" (Llee.Outcome.to_string o)

(* ---- shift amounts reduce modulo the declared width ---- *)

let test_shift_widths () =
  let signed_tys =
    [
      (Types.Sbyte, 8); (Types.Ubyte, 8); (Types.Short, 16); (Types.Ushort, 16);
      (Types.Int, 32); (Types.Uint, 32); (Types.Long, 64); (Types.Ulong, 64);
    ]
  in
  List.iter
    (fun (ty, w) ->
      let tyname = Types.to_string ty in
      let int_of v = match v with Eval.I (_, x) -> x | _ -> assert false in
      (* shifting by exactly the width is shifting by zero *)
      check_string
        (Printf.sprintf "%s: shl by width is identity" tyname)
        "1"
        (Int64.to_string
           (int_of (Eval.int_binop Ir.Shl ty 1L (Int64.of_int w))));
      (* width + 3 reduces to 3 *)
      check_string
        (Printf.sprintf "%s: shl by width+3 is shl 3" tyname)
        "8"
        (Int64.to_string
           (int_of (Eval.int_binop Ir.Shl ty 1L (Int64.of_int (w + 3)))));
      (* a shift strictly inside the width still works *)
      check_string
        (Printf.sprintf "%s: shl 2" tyname)
        "20"
        (Int64.to_string (int_of (Eval.int_binop Ir.Shl ty 5L 2L)));
      (* arithmetic shr of a negative value by the width is identity *)
      if Types.is_signed ty then
        check_string
          (Printf.sprintf "%s: shr by width is identity" tyname)
          "-8"
          (Int64.to_string
             (int_of (Eval.int_binop Ir.Shr ty (-8L) (Int64.of_int w)))))
    signed_tys

let shift_program =
  {|
%amt = global ubyte 19

int %main() {
entry:
  %a = load ubyte* %amt
  %x = shl short 3, ubyte %a
  %y = shr short %x, ubyte %a
  %w = cast short %y to int
  ret int %w
}
|}

let test_shift_engines () =
  (* 19 mod 16 = 3: shl 3 then shr 3 round-trips the value *)
  match all_engines_agree "over-wide shift" shift_program with
  | Llee.Outcome.Exit c -> check_int "shl/shr by 19 on short" 3 c
  | o -> Alcotest.failf "unexpected outcome: %s" (Llee.Outcome.to_string o)

(* ---- signed INT_MIN / -1 traps as overflow ---- *)

let test_intmin_div_eval () =
  List.iter
    (fun (ty, minv) ->
      let tyname = Types.to_string ty in
      List.iter
        (fun op ->
          match Eval.int_binop op ty minv (-1L) with
          | exception Eval.Overflow -> ()
          | v ->
              Alcotest.failf "%s: INT_MIN/-1 %s returned %s" tyname
                (match op with Ir.Div -> "div" | _ -> "rem")
                (Eval.to_string v))
        [ Ir.Div; Ir.Rem ];
      (* one away from the corner divides fine *)
      match Eval.int_binop Ir.Div ty (Int64.add minv 1L) (-1L) with
      | Eval.I (_, v) ->
          check_string
            (Printf.sprintf "%s: (INT_MIN+1)/-1" tyname)
            (Int64.to_string (Int64.neg (Int64.add minv 1L)))
            (Int64.to_string v)
      | _ -> Alcotest.fail "expected an integer")
    [
      (Types.Sbyte, -128L);
      (Types.Short, -32768L);
      (Types.Int, -2147483648L);
      (Types.Long, Int64.min_int);
    ]

let intmin_program =
  {|
%m1 = global int -1

int %main() {
entry:
  %d = load int* %m1
  %q = div int -2147483648, %d
  ret int %q
}
|}

let test_intmin_div_engines () =
  let m = Gen.parse intmin_program in
  (match Gen.divergence m with
  | None -> ()
  | Some report -> Alcotest.failf "INT_MIN/-1 diverges:\n%s" report);
  List.iter
    (fun (name, o, _) ->
      (match o with
      | Llee.Outcome.Trapped { kind = Llee.Outcome.Overflow; _ } -> ()
      | o ->
          Alcotest.failf "%s: expected overflow trap, got %s" name
            (Llee.Outcome.to_string o));
      check_int (name ^ ": overflow exits 134") 134 (Llee.Outcome.exit_code o))
    (Gen.engine_results m)

(* unsigned division by the all-ones pattern must NOT trap *)
let test_unsigned_allones_divisor () =
  match Eval.int_binop Ir.Div Types.Uint 0x80000000L 0xFFFFFFFFL with
  | Eval.I (_, v) -> check_string "uint 0x80000000 / 0xFFFFFFFF" "0" (Int64.to_string v)
  | _ -> Alcotest.fail "expected an integer"

(* ---- cast corners ---- *)

let test_cast_corners_eval () =
  let cast src dst v = Eval.cast ~src_ty:src ~dst_ty:dst v in
  let int_of v = match v with Eval.I (_, x) -> x | _ -> assert false in
  (* NaN converts to zero on every integer width *)
  List.iter
    (fun ty ->
      check_string
        ("nan -> " ^ Types.to_string ty)
        "0"
        (Int64.to_string
           (int_of (cast Types.Double ty (Eval.F (Types.Double, Float.nan))))))
    [ Types.Sbyte; Types.Short; Types.Int; Types.Long; Types.Ulong ];
  (* in-range conversions truncate toward zero *)
  check_string "2.9 -> int" "2"
    (Int64.to_string (int_of (cast Types.Double Types.Int (Eval.F (Types.Double, 2.9)))));
  check_string "-2.9 -> int" "-2"
    (Int64.to_string (int_of (cast Types.Double Types.Int (Eval.F (Types.Double, -2.9)))));
  (* out-of-range values normalize through the destination width the
     same way on every engine (pinned by the differential fuzz); at the
     Eval layer the result must at least be a canonical representative *)
  List.iter
    (fun x ->
      List.iter
        (fun ty ->
          let v = int_of (cast Types.Double ty (Eval.F (Types.Double, x))) in
          check_string
            (Printf.sprintf "%g -> %s canonical" x (Types.to_string ty))
            (Int64.to_string (Ir.normalize_int ty v))
            (Int64.to_string v))
        [ Types.Sbyte; Types.Ubyte; Types.Int; Types.Uint; Types.Long ])
    [ 1e300; -1e300; Float.infinity; Float.neg_infinity ];
  (* bool round-trips *)
  (match cast Types.Bool Types.Int (Eval.B true) with
  | Eval.I (_, 1L) -> ()
  | v -> Alcotest.failf "true -> int: %s" (Eval.to_string v));
  (match cast Types.Int Types.Bool (Eval.I (Types.Int, 42L)) with
  | Eval.B true -> ()
  | v -> Alcotest.failf "42 -> bool: %s" (Eval.to_string v));
  (match cast Types.Int Types.Bool (Eval.I (Types.Int, 0L)) with
  | Eval.B false -> ()
  | v -> Alcotest.failf "0 -> bool: %s" (Eval.to_string v));
  (* pointer <-> integer round-trip *)
  let pty = Types.Pointer Types.Sbyte in
  (match cast pty Types.Long (Eval.P 0x1234L) with
  | Eval.I (_, 0x1234L) -> ()
  | v -> Alcotest.failf "ptr -> long: %s" (Eval.to_string v));
  match cast Types.Long pty (Eval.I (Types.Long, 0x1234L)) with
  | Eval.P 0x1234L -> ()
  | v -> Alcotest.failf "long -> ptr: %s" (Eval.to_string v)

(* the float -> pointer cast is ill-typed; [Outcome.protect] must map
   the resulting [Invalid_argument] into a contained outcome instead of
   letting it take down the engine *)
let test_float_to_pointer_contained () =
  let o =
    Llee.Outcome.protect ~engine:"test" (fun () ->
        ignore
          (Eval.cast ~src_ty:Types.Double ~dst_ty:(Types.Pointer Types.Sbyte)
             (Eval.F (Types.Double, 1.0)));
        0)
  in
  match o with
  | Llee.Outcome.Trapped { kind = Llee.Outcome.Invalid_operation _; _ } -> ()
  | o ->
      Alcotest.failf "float->pointer escaped protect: %s"
        (Llee.Outcome.to_string o)

(* fp -> int with out-of-range, NaN-producing and negative sources: the
   exact destination value is pinned by Eval, and all five engines must
   land on it together *)
let cast_corner_program init_big init_neg =
  Printf.sprintf
    {|
%%big = global double %s
%%neg = global float %s

int %%main() {
entry:
  %%b = load double* %%big
  %%n = load float* %%neg
  %%nan = div double %%b, %%b
  %%x1 = cast double %%b to sbyte
  %%x2 = cast double %%b to ushort
  %%x3 = cast float %%n to int
  %%x4 = cast double %%nan to long
  %%w1 = cast sbyte %%x1 to int
  %%w2 = cast ushort %%x2 to int
  %%w4 = cast long %%x4 to int
  %%s1 = add int %%w1, %%w2
  %%s2 = add int %%s1, %%x3
  %%s3 = add int %%s2, %%w4
  %%m = and int %%s3, 127
  ret int %%m
}
|}
    init_big init_neg

let test_cast_corner_engines () =
  List.iter
    (fun (big, neg) ->
      ignore
        (all_engines_agree
           (Printf.sprintf "cast corners (%s, %s)" big neg)
           (cast_corner_program big neg)))
    [ ("0.0", "0.0"); ("1.0e300", "-3.4e38"); ("-2.5", "7.9") ]

(* ---- the lockstep checker itself ---- *)

let test_tv_json_roundtrip () =
  let v =
    {
      Llee.Tv.v_version = Llee.Tv.version;
      v_target = "x86lite";
      v_results =
        [
          ("f", Llee.Tv.Certified { vectors = 12 });
          ("g", Llee.Tv.Skipped { reason = "pointer return" });
          ("h", Llee.Tv.Mismatch { vector = "f(3)"; detail = "ret differs" });
        ];
    }
  in
  let json = Llee.Tv.verdict_to_json v in
  let v2 =
    Llee.Tv.verdict_of_json
      (Check.Json.parse (Check.Json.to_string ~pretty:false json))
  in
  check_bool "verdict round-trips" true (v = v2);
  check_int "mismatch count" 1 (Llee.Tv.mismatches v2);
  check_int "certified count" 1 (Llee.Tv.certified v2);
  (* a stale version must be rejected, forcing recertification *)
  let stale =
    Check.Json.to_string ~pretty:false
      (Llee.Tv.verdict_to_json { v with Llee.Tv.v_version = 999 })
  in
  match Llee.Tv.verdict_of_json (Check.Json.parse stale) with
  | _ -> Alcotest.fail "stale version accepted"
  | exception Check.Json.Parse_error _ -> ()

let test_tv_catches_divergence () =
  let truth =
    Gen.parse "int %f(int %x) {\nentry:\n  %r = add int %x, 1\n  ret int %r\n}\n"
  in
  let lie =
    Gen.parse "int %f(int %x) {\nentry:\n  %r = add int %x, 2\n  ret int %r\n}\n"
  in
  let v = Llee.Tv.certify_module ~target:"x86lite" ~native:lie truth in
  check_int "divergent translation caught" 1 (Llee.Tv.mismatches v);
  let honest = Llee.Tv.certify_module ~target:"x86lite" truth in
  check_bool "honest translation certifies" true
    (Llee.Tv.clean honest && Llee.Tv.certified honest = 1)

let suite =
  [
    Alcotest.test_case "NaN comparisons (Eval)" `Quick test_nan_compare_eval;
    Alcotest.test_case "NaN comparisons (five engines)" `Quick
      test_nan_compare_engines;
    Alcotest.test_case "shift amounts mod width (Eval)" `Quick
      test_shift_widths;
    Alcotest.test_case "over-wide shift (five engines)" `Quick
      test_shift_engines;
    Alcotest.test_case "INT_MIN / -1 overflow (Eval)" `Quick
      test_intmin_div_eval;
    Alcotest.test_case "INT_MIN / -1 overflow (five engines)" `Quick
      test_intmin_div_engines;
    Alcotest.test_case "unsigned all-ones divisor" `Quick
      test_unsigned_allones_divisor;
    Alcotest.test_case "cast corners (Eval)" `Quick test_cast_corners_eval;
    Alcotest.test_case "float->pointer contained" `Quick
      test_float_to_pointer_contained;
    Alcotest.test_case "cast corners (five engines)" `Quick
      test_cast_corner_engines;
    Alcotest.test_case "tv verdict JSON round-trip" `Quick
      test_tv_json_roundtrip;
    Alcotest.test_case "tv catches a lying translation" `Quick
      test_tv_catches_divergence;
  ]
