(* Unit tests for the vmem substrate: data layout, paged memory,
   endianness, the image loader, and the runtime. *)

open Llva

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let lt32 = Vmem.Layout.create Target.little32
let lt64 = Vmem.Layout.create Target.little64

let test_scalar_sizes () =
  check_int "bool" 1 (Vmem.Layout.size_of lt32 Types.Bool);
  check_int "sbyte" 1 (Vmem.Layout.size_of lt32 Types.Sbyte);
  check_int "short" 2 (Vmem.Layout.size_of lt32 Types.Short);
  check_int "int" 4 (Vmem.Layout.size_of lt32 Types.Int);
  check_int "long" 8 (Vmem.Layout.size_of lt32 Types.Long);
  check_int "float" 4 (Vmem.Layout.size_of lt32 Types.Float);
  check_int "double" 8 (Vmem.Layout.size_of lt32 Types.Double);
  check_int "ptr32" 4 (Vmem.Layout.size_of lt32 (Types.Pointer Types.Int));
  check_int "ptr64" 8 (Vmem.Layout.size_of lt64 (Types.Pointer Types.Int))

let test_struct_layout () =
  (* { sbyte, int, sbyte } -> 0, 4, 8; size 12 (align 4) *)
  let s = Types.Struct [ Types.Sbyte; Types.Int; Types.Sbyte ] in
  check_int "size" 12 (Vmem.Layout.size_of lt32 s);
  check_int "align" 4 (Vmem.Layout.align_of lt32 s);
  check_int "f0" 0 (Vmem.Layout.field_offset lt32 [ Types.Sbyte; Types.Int; Types.Sbyte ] 0);
  check_int "f1" 4 (Vmem.Layout.field_offset lt32 [ Types.Sbyte; Types.Int; Types.Sbyte ] 1);
  check_int "f2" 8 (Vmem.Layout.field_offset lt32 [ Types.Sbyte; Types.Int; Types.Sbyte ] 2);
  (* pointers change layout across targets *)
  let p = Types.Struct [ Types.Sbyte; Types.Pointer Types.Int ] in
  check_int "ptr struct 32" 8 (Vmem.Layout.size_of lt32 p);
  check_int "ptr struct 64" 16 (Vmem.Layout.size_of lt64 p);
  (* arrays multiply *)
  check_int "array of structs" 120
    (Vmem.Layout.size_of lt32 (Types.Array (10, s)))

let test_gep_offsets () =
  (* the paper's own example: QuadTree offsets are 20 bytes on 32-bit
     pointers and 32 bytes on 64-bit pointers for T[0].Children[3] *)
  let env = Types.empty_env () in
  Hashtbl.replace env "QT"
    (Types.Struct [ Types.Double; Types.Array (4, Types.Pointer (Types.Named "QT")) ]);
  let lt32q = { Vmem.Layout.target = Target.little32; env } in
  let lt64q = { Vmem.Layout.target = Target.little64; env } in
  let indexes =
    [ (Types.Long, 0L); (Types.Ubyte, 1L); (Types.Long, 3L) ]
  in
  let off32, ty32 =
    Vmem.Layout.gep_offset lt32q (Types.Pointer (Types.Named "QT")) indexes
  in
  let off64, _ =
    Vmem.Layout.gep_offset lt64q (Types.Pointer (Types.Named "QT")) indexes
  in
  check_int "paper: 32-bit offset is 20" 20 off32;
  check_int "paper: 64-bit offset is 32" 32 off64;
  check_bool "result type" true
    (Types.equal ty32 (Types.Pointer (Types.Named "QT")));
  (* negative array index walks backwards *)
  let offn, _ =
    Vmem.Layout.gep_offset lt32q (Types.Pointer Types.Int) [ (Types.Long, -3L) ]
  in
  check_int "negative index" (-12) offn

let test_memory_rw () =
  let mem = Vmem.Memory.create Target.little32 in
  Vmem.Memory.write_uint mem 0x2000L 4 0xDEADBEEFL;
  Alcotest.(check int64) "u32 roundtrip" 0xDEADBEEFL
    (Vmem.Memory.read_uint mem 0x2000L 4);
  check_int "byte 0 LE" 0xEF (Vmem.Memory.read_u8 mem 0x2000L);
  check_int "byte 3 LE" 0xDE (Vmem.Memory.read_u8 mem 0x2003L);
  (* big endian flips byte order *)
  let bem = Vmem.Memory.create Target.big32 in
  Vmem.Memory.write_uint bem 0x2000L 4 0xDEADBEEFL;
  check_int "byte 0 BE" 0xDE (Vmem.Memory.read_u8 bem 0x2000L);
  Alcotest.(check int64) "BE roundtrip" 0xDEADBEEFL
    (Vmem.Memory.read_uint bem 0x2000L 4);
  (* cross-page access works (page size 4096) *)
  Vmem.Memory.write_uint mem 0x2FFEL 8 0x0123456789ABCDEFL;
  Alcotest.(check int64) "cross page" 0x0123456789ABCDEFL
    (Vmem.Memory.read_uint mem 0x2FFEL 8)

let test_word_fast_paths () =
  (* the in-page u64 fast path must agree byte-for-byte with the byte
     loop, on both endiannesses and across page boundaries *)
  let check64 = Alcotest.(check int64) in
  let mem = Vmem.Memory.create Target.little32 in
  Vmem.Memory.write_u64 mem 0x3000L 0x0123456789ABCDEFL;
  check64 "u64 roundtrip" 0x0123456789ABCDEFL (Vmem.Memory.read_u64 mem 0x3000L);
  check_int "u64 LE low byte" 0xEF (Vmem.Memory.read_u8 mem 0x3000L);
  check_int "u64 LE high byte" 0x01 (Vmem.Memory.read_u8 mem 0x3007L);
  check64 "u64 agrees with read_uint" (Vmem.Memory.read_uint mem 0x3000L 8)
    (Vmem.Memory.read_u64 mem 0x3000L);
  (* straddling a page boundary takes the slow path with the same result *)
  Vmem.Memory.write_u64 mem 0x3FFDL 0x1122334455667788L;
  check64 "u64 straddle roundtrip" 0x1122334455667788L
    (Vmem.Memory.read_u64 mem 0x3FFDL);
  check_int "straddle low byte" 0x88 (Vmem.Memory.read_u8 mem 0x3FFDL);
  check_int "straddle high byte" 0x11 (Vmem.Memory.read_u8 mem 0x4004L);
  (* big-endian words store their high byte first *)
  let bem = Vmem.Memory.create Target.big32 in
  Vmem.Memory.write_u64 bem 0x3000L 0x0123456789ABCDEFL;
  check64 "BE u64 roundtrip" 0x0123456789ABCDEFL
    (Vmem.Memory.read_u64 bem 0x3000L);
  check_int "BE u64 first byte" 0x01 (Vmem.Memory.read_u8 bem 0x3000L);
  (* unaligned in-page accesses still round-trip *)
  Vmem.Memory.write_u64 mem 0x3005L 0x00FFEEDDCCBBAA99L;
  check64 "unaligned u64" 0x00FFEEDDCCBBAA99L (Vmem.Memory.read_u64 mem 0x3005L)

let test_bulk_bytes () =
  (* read_bytes/write_bytes/fill blit page-at-a-time; a straddling span
     must come back intact *)
  let mem = Vmem.Memory.create Target.little32 in
  let n = 10_000 in
  let src = Bytes.init n (fun k -> Char.chr ((k * 7) land 0xFF)) in
  (* starts mid-page and crosses two page boundaries *)
  Vmem.Memory.write_bytes mem 0x2F40L src;
  let back = Vmem.Memory.read_bytes mem 0x2F40L n in
  check_bool "bulk roundtrip" true (Bytes.equal src back);
  check_int "spot check via u8" ((5000 * 7) land 0xFF)
    (Vmem.Memory.read_u8 mem (Int64.add 0x2F40L 5000L));
  Vmem.Memory.fill mem 0x2F40L n 0xA5;
  let filled = Vmem.Memory.read_bytes mem 0x2F40L n in
  check_bool "fill" true
    (Bytes.for_all (fun c -> Char.code c = 0xA5) filled);
  (* zero-length operations are no-ops *)
  Vmem.Memory.write_bytes mem 0x2F40L Bytes.empty;
  check_int "empty read" 0 (Bytes.length (Vmem.Memory.read_bytes mem 0x2F40L 0))

let test_null_page_faults () =
  let mem = Vmem.Memory.create Target.little32 in
  check_bool "null faults" true
    (try
       ignore (Vmem.Memory.read_u8 mem 0L);
       false
     with Vmem.Memory.Fault 0L -> true);
  check_bool "low page faults" true
    (try
       Vmem.Memory.write_u8 mem 0xFFFL 1;
       false
     with Vmem.Memory.Fault _ -> true);
  check_bool "0x1000 is mapped" true
    (try
       ignore (Vmem.Memory.read_u8 mem 0x1000L);
       true
     with Vmem.Memory.Fault _ -> false)

let test_typed_scalar_access () =
  let mem = Vmem.Memory.create Target.little32 in
  (* negative short sign-extends on read *)
  Vmem.Memory.write_scalar mem Types.Short 0x3000L (Eval.I (Types.Short, -2L));
  (match Vmem.Memory.read_scalar mem Types.Short 0x3000L with
  | Eval.I (Types.Short, v) -> Alcotest.(check int64) "short -2" (-2L) v
  | _ -> Alcotest.fail "wrong scalar");
  (* same bytes read unsigned *)
  (match Vmem.Memory.read_scalar mem Types.Ushort 0x3000L with
  | Eval.I (Types.Ushort, v) -> Alcotest.(check int64) "ushort 65534" 65534L v
  | _ -> Alcotest.fail "wrong scalar");
  (* float32 rounding through memory *)
  Vmem.Memory.write_scalar mem Types.Float 0x3010L (Eval.F (Types.Float, 1.1));
  (match Vmem.Memory.read_scalar mem Types.Float 0x3010L with
  | Eval.F (Types.Float, v) ->
      check_bool "float32 precision" true (Float.abs (v -. 1.1) < 1e-6 && v <> 1.1)
  | _ -> Alcotest.fail "wrong scalar");
  (* doubles are exact *)
  Vmem.Memory.write_scalar mem Types.Double 0x3020L (Eval.F (Types.Double, 1.1));
  match Vmem.Memory.read_scalar mem Types.Double 0x3020L with
  | Eval.F (Types.Double, v) -> check_bool "double exact" true (v = 1.1)
  | _ -> Alcotest.fail "wrong scalar"

let test_malloc_free () =
  let mem = Vmem.Memory.create Target.little32 in
  let a = Vmem.Memory.malloc mem 24 in
  let b = Vmem.Memory.malloc mem 24 in
  check_bool "distinct blocks" true (not (Int64.equal a b));
  check_bool "zeroed" true (Vmem.Memory.read_u8 mem a = 0);
  Vmem.Memory.write_u8 mem a 7;
  Vmem.Memory.free mem a;
  (* freed block is recycled for the same size class, and re-zeroed *)
  let c = Vmem.Memory.malloc mem 20 in
  check_bool "recycled" true (Int64.equal a c);
  check_int "re-zeroed" 0 (Vmem.Memory.read_u8 mem c);
  (* double free faults *)
  Vmem.Memory.free mem c;
  check_bool "double free faults" true
    (try
       Vmem.Memory.free mem c;
       false
     with Vmem.Memory.Fault _ -> true);
  (* free of null is a no-op *)
  Vmem.Memory.free mem 0L;
  check_int "live bytes accounted" 32 (Vmem.Memory.live_bytes mem)

let test_image_loading () =
  let src =
    {|
%greeting = constant [3 x sbyte] c"hi\00"
%number = global int 1234
%pair = global { short, int* } { short 7, int* %number }
%fptr = global void ()* %f

void %f() {
entry:
  ret void
}
|}
  in
  let m = Resolve.parse_module src in
  let img = Vmem.Image.load m in
  let addr name = Option.get (Vmem.Image.symbol_address img name) in
  (* string bytes *)
  check_int "g[0]" (Char.code 'h') (Vmem.Memory.read_u8 img.Vmem.Image.mem (addr "greeting"));
  check_int "g[2] NUL" 0
    (Vmem.Memory.read_u8 img.Vmem.Image.mem (Int64.add (addr "greeting") 2L));
  (* int initializer *)
  Alcotest.(check int64) "number" 1234L
    (Vmem.Memory.read_uint img.Vmem.Image.mem (addr "number") 4);
  (* struct with a cross-reference: second field holds &number *)
  Alcotest.(check int64) "pair.ptr = &number" (addr "number")
    (Vmem.Memory.read_uint img.Vmem.Image.mem (Int64.add (addr "pair") 4L) 4);
  (* function pointers resolve to the function's descriptor address *)
  Alcotest.(check int64) "fptr = &f" (addr "f")
    (Vmem.Memory.read_uint img.Vmem.Image.mem (addr "fptr") 4);
  match Vmem.Image.func_at img (addr "f") with
  | Some f -> check_string "func_at" "f" f.Ir.fname
  | None -> Alcotest.fail "function address not resolvable"

let test_runtime () =
  let mem = Vmem.Memory.create Target.little32 in
  let rt = Vmem.Runtime.create mem in
  ignore (Vmem.Runtime.call rt "print_int" [ Eval.I (Types.Int, -5L) ]);
  ignore (Vmem.Runtime.call rt "print_nl" []);
  ignore (Vmem.Runtime.call rt "print_float" [ Eval.F (Types.Double, 2.5) ]);
  check_string "output" "-5\n2.5" (Vmem.Runtime.output rt);
  (* memset + strlen through simulated memory *)
  let p = Vmem.Memory.malloc mem 16 in
  ignore
    (Vmem.Runtime.call rt "memset"
       [ Eval.P p; Eval.I (Types.Int, 65L); Eval.I (Types.Int, 5L) ]);
  (match Vmem.Runtime.call rt "strlen" [ Eval.P p ] with
  | Eval.I (_, n) -> Alcotest.(check int64) "strlen" 5L n
  | _ -> Alcotest.fail "strlen result");
  check_bool "exit raises" true
    (try
       ignore (Vmem.Runtime.call rt "exit" [ Eval.I (Types.Int, 3L) ]);
       false
     with Vmem.Runtime.Exit_called 3 -> true)

(* qcheck: layout sanity on random types *)
let gen_type : Types.t QCheck.arbitrary =
  let open QCheck.Gen in
  let scalar =
    oneofl
      [ Types.Bool; Types.Sbyte; Types.Short; Types.Int; Types.Long;
        Types.Float; Types.Double; Types.Pointer Types.Int ]
  in
  let gen =
    let rec ty depth =
      if depth = 0 then scalar
      else
        frequency
          [
            (3, scalar);
            (1, map (fun t -> Types.Pointer t) (ty (depth - 1)));
            ( 2,
              map2 (fun n t -> Types.Array ((n mod 5) + 1, t)) small_nat
                (ty (depth - 1)) );
            ( 2,
              map (fun ts -> Types.Struct ts)
                (list_size (int_range 1 4) (ty (depth - 1))) );
          ]
    in
    ty 3
  in
  QCheck.make gen ~print:Types.to_string

let prop_layout_sane =
  QCheck.Test.make ~name:"layout: size positive, aligned, monotone" ~count:300
    gen_type (fun ty ->
      let s32 = Vmem.Layout.size_of lt32 ty in
      let s64 = Vmem.Layout.size_of lt64 ty in
      let a32 = Vmem.Layout.align_of lt32 ty in
      s32 > 0 && s64 >= s32 && a32 > 0 && s32 mod a32 = 0)

let prop_field_offsets_ordered =
  QCheck.Test.make ~name:"layout: field offsets strictly increase" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 6) gen_type)
    (fun fields ->
      let rec check k last =
        if k >= List.length fields then true
        else
          let off = Vmem.Layout.field_offset lt32 fields k in
          off >= last
          && off mod Vmem.Layout.align_of lt32 (List.nth fields k) = 0
          && check (k + 1) (off + Vmem.Layout.size_of lt32 (List.nth fields k))
      in
      check 0 0)

let suite =
  [
    Alcotest.test_case "scalar sizes" `Quick test_scalar_sizes;
    Alcotest.test_case "struct layout" `Quick test_struct_layout;
    Alcotest.test_case "gep offsets (paper example)" `Quick test_gep_offsets;
    Alcotest.test_case "memory read/write" `Quick test_memory_rw;
    Alcotest.test_case "word fast paths" `Quick test_word_fast_paths;
    Alcotest.test_case "bulk byte ops" `Quick test_bulk_bytes;
    Alcotest.test_case "null page faults" `Quick test_null_page_faults;
    Alcotest.test_case "typed scalar access" `Quick test_typed_scalar_access;
    Alcotest.test_case "malloc/free" `Quick test_malloc_free;
    Alcotest.test_case "image loading" `Quick test_image_loading;
    Alcotest.test_case "runtime" `Quick test_runtime;
    QCheck_alcotest.to_alcotest prop_layout_sane;
    QCheck_alcotest.to_alcotest prop_field_offsets_ordered;
  ]
