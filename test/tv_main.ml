(* @tv gate: translation validation.

   Part 1 (lockstep certification): every workload of the paper's
   Table 2 is lockstep-certified on both targets through [Llee.certify]
   over in-memory storage. The cold launch must compute a clean verdict
   ([tv_runs] = 1) and record it as a [#tv#] cache entry; a warm launch
   over the same storage must reuse the recorded verdict without
   re-running the checker ([tv_skipped] = 1, [tv_runs] = 0) and decode
   it to the identical verdict.

   Part 2 (the checker catches lies): certifying a module against a
   deliberately divergent native translation must produce a Mismatch —
   on the return value and on the trap outcome, on both targets.

   Part 3 (differential fuzz): fixed-seed random programs spanning every
   integer width, signed and unsigned division/remainder, over-wide
   shifts, casts, float arithmetic and NaN comparisons, stack memory,
   and multi-function calls run on all five engines; the observable
   behavior must be identical everywhere. Any divergence is shrunk to a
   minimal .ll repro and printed. Override the campaign size with
   TV_FUZZ_N. *)

module Storage = Llee.Storage

let failures = ref 0

let check name ok =
  if not ok then begin
    incr failures;
    Printf.printf "  FAIL %s\n%!" name
  end

let with_storage eng storage = { (Llee.fresh_run eng) with Llee.storage }

(* ---- part 1: lockstep certification of the workload table ---- *)

let certify_workload (w : Workloads.workload) =
  Printf.printf "%-17s %!" w.Workloads.name;
  let m = Workloads.compile_optimized ~level:1 w in
  let bytes = Llva.Encode.encode m in
  let totals =
    List.map
      (fun target ->
        let tname = Llee.target_name target in
        let tag = Printf.sprintf "%s/%s" w.Workloads.name tname in
        let storage = Storage.in_memory () in
        let cold = Llee.load ~storage ~target bytes in
        let v = Llee.certify cold in
        check (tag ^ ": certifies clean") (Llee.Tv.clean v);
        if not (Llee.Tv.clean v) then
          List.iter (fun l -> Printf.printf "    %s\n%!" l) (Llee.Tv.report v);
        check
          (tag ^ ": cold launch computed the verdict")
          (cold.Llee.stats.Llee.tv_runs = 1
          && cold.Llee.stats.Llee.tv_skipped = 0);
        check
          (tag ^ ": certifies at least one function")
          (Llee.Tv.certified v > 0);
        if Llee.Tv.certified v = 0 then
          List.iter (fun l -> Printf.printf "    %s\n%!" l) (Llee.Tv.report v);
        (* warm: the recorded #tv# entry is reused, never recomputed *)
        let warm = with_storage cold storage in
        let v2 = Llee.certify warm in
        check
          (tag ^ ": warm launch reuses the recorded verdict")
          (warm.Llee.stats.Llee.tv_runs = 0
          && warm.Llee.stats.Llee.tv_skipped = 1);
        check (tag ^ ": recorded verdict decodes identically") (v2 = v);
        Llee.Tv.certified v)
      [ Llee.X86; Llee.Sparc ]
  in
  Printf.printf "certified %s\n%!"
    (String.concat "+" (List.map string_of_int totals))

(* ---- part 2: the checker must catch a lying translation ---- *)

let mismatch_selftest () =
  Printf.printf "%-17s %!" "mismatch-probe";
  let truth =
    Gen.parse
      "int %f(int %x) {\nentry:\n  %r = add int %x, 1\n  ret int %r\n}\n"
  in
  let off_by_one =
    Gen.parse
      "int %f(int %x) {\nentry:\n  %r = add int %x, 2\n  ret int %r\n}\n"
  in
  (* a translation that traps where the reference does not *)
  let trappy =
    Gen.parse
      "int %f(int %x) {\nentry:\n  %z = sub int %x, %x\n  %r = div int %x, \
       %z\n  ret int %r\n}\n"
  in
  List.iter
    (fun target ->
      let v = Llee.Tv.certify_module ~target ~native:off_by_one truth in
      check
        (Printf.sprintf "%s: wrong return value caught" target)
        (Llee.Tv.mismatches v = 1);
      let v2 = Llee.Tv.certify_module ~target ~native:trappy truth in
      check
        (Printf.sprintf "%s: spurious trap caught" target)
        (Llee.Tv.mismatches v2 = 1);
      (* and the honest translation certifies *)
      let v3 = Llee.Tv.certify_module ~target truth in
      check
        (Printf.sprintf "%s: honest translation certifies" target)
        (Llee.Tv.clean v3 && Llee.Tv.certified v3 = 1))
    [ "x86lite"; "sparclite" ];
  Printf.printf "ok\n%!"

(* ---- part 3: cross-engine differential fuzz ---- *)

let fuzz () =
  let n =
    match Sys.getenv_opt "TV_FUZZ_N" with
    | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 40)
    | None -> 40
  in
  Printf.printf "%-17s %!" (Printf.sprintf "fuzz(%d seeds)" n);
  let t0 = Unix.gettimeofday () in
  let diverged = ref 0 in
  for seed = 1 to n do
    let m = Gen.random_full_program (Random.State.make [| 0xF0CC; seed |]) in
    (match Llva.Verify.verify_module m with
    | [] -> ()
    | errs ->
        incr failures;
        Printf.printf "  FAIL seed %d: generator produced invalid IR: %s\n%!"
          seed
          (String.concat "; " errs));
    match Gen.divergence m with
    | None -> ()
    | Some report ->
        incr diverged;
        incr failures;
        let small = Gen.shrink_divergence m in
        let why = Option.value ~default:report (Gen.divergence small) in
        Printf.printf
          "  FAIL seed %d: engines diverge\n%s\nminimized repro:\n%s\n%!" seed
          why
          (Llva.Pretty.module_to_string small)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "ok (%d programs x %d engines in %.1fs, %.1f programs/s)\n%!" n
    (List.length Gen.engine_names)
    dt
    (float_of_int n /. dt);
  if !diverged > 0 then
    Printf.printf "  %d divergent program(s) found\n%!" !diverged

let () =
  Printf.printf "translation validation: %d workloads, tv v%d\n%!"
    (List.length Workloads.all)
    Llee.Tv.version;
  (* TV_FUZZ_ONLY skips the workload certification for a fast fuzz-only
     campaign (development loop; the full gate always runs both) *)
  if Sys.getenv_opt "TV_FUZZ_ONLY" = None then begin
    List.iter certify_workload Workloads.all;
    mismatch_selftest ()
  end;
  fuzz ();
  if !failures > 0 then begin
    Printf.printf "translation validation FAILED: %d assertion(s)\n" !failures;
    exit 1
  end
  else Printf.printf "translation validation passed\n"
